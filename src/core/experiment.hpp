// End-to-end experiment driver: the full DATE'05 measurement pipeline.
//
//   build chip -> thermally-aware placement -> cycle-accurate decode ->
//   activity -> power map -> calibrate to the paper's base temperature ->
//   per-scheme: simulate the migration orbit on the fabric (timing +
//   energy maps) -> periodic thermal co-simulation -> peak reduction &
//   throughput penalty.
//
// Every number in Figure 1 and the period-sweep discussion of Section 3 is
// produced by this class; the bench binaries only format its output.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/chip_config.hpp"
#include "core/thermal_runtime.hpp"
#include "core/transform.hpp"
#include "thermal/rc_network.hpp"

namespace renoc {

/// Result of evaluating one migration scheme at one period.
struct SchemeEvaluation {
  MigrationScheme scheme = MigrationScheme::kNone;
  double period_s = 0.0;
  int orbit_length = 0;
  double peak_temp_c = 0.0;
  double reduction_c = 0.0;      ///< baseline peak - migrating peak
  double mean_temp_c = 0.0;
  double ripple_c = 0.0;
  double migration_s = 0.0;      ///< halt time per migration (mean)
  double throughput_penalty = 0.0;  ///< halt / (period + halt)
  int phases = 0;                ///< per migration (first step)
  std::uint64_t state_flits = 0;  ///< per migration (first step)
  double migration_energy_j = 0.0;  ///< per migration (mean, calibrated)
  bool thermal_converged = false;
};

class ExperimentDriver {
 public:
  explicit ExperimentDriver(const ChipConfig& cfg);
  ~ExperimentDriver();

  /// Runs placement, measures the baseline power map over `measure_blocks`
  /// decoded blocks, and calibrates the power scale to the paper's base
  /// peak temperature. Must be called before evaluate_scheme().
  void prepare(int measure_blocks = 2);

  // --- Baseline quantities (valid after prepare) ------------------------
  const BuiltChip& chip() const { return *built_; }
  const std::vector<int>& baseline_placement() const { return placement_; }
  const std::vector<double>& base_power() const { return base_power_; }
  double base_peak_temp_c() const { return base_peak_temp_c_; }
  double base_mean_temp_c() const { return base_mean_temp_c_; }
  Cycle block_cycles() const { return block_cycles_; }
  double block_seconds() const;
  double calibration_scale() const { return calibration_scale_; }
  double total_power_w() const;
  const RcNetwork& thermal_network() const { return *net_; }

  /// Peak-temperature of the identity placement (before thermally-aware
  /// placement), for quantifying what the static optimization bought.
  double identity_placement_peak_c() const { return identity_peak_c_; }

  /// Evaluates one scheme at a migration period. If `period_s` is not
  /// given, the period snaps to the paper's 109.3 us rounded to a whole
  /// number of decoded blocks (the paper aligns migrations with block
  /// completion).
  ///
  /// The expensive per-scheme construction — the cycle-accurate migration
  /// simulation yielding the orbit's timing and per-step energy maps,
  /// which depends only on the scheme — and the per-period thermal
  /// runtime (factorizations) are cached across calls, so sweeping one
  /// scheme over many periods re-simulates nothing and re-factors once
  /// per distinct period. Cached and fresh evaluations are identical:
  /// both simulations are deterministic.
  SchemeEvaluation evaluate_scheme(MigrationScheme scheme,
                                   std::optional<double> period_s = {});

  /// The full scheme x period study grid: one evaluation per (scheme,
  /// period) pair, scheme-major, sharing the caches above. Periods may be
  /// empty to mean {default_period_s()}.
  std::vector<SchemeEvaluation> scheme_study(
      const std::vector<MigrationScheme>& schemes,
      const std::vector<double>& periods = {});

  /// The paper-aligned default period (whole blocks closest to 109.3 us).
  double default_period_s() const;

  /// Per-tile joules deposited by one migration of `scheme`, measured on
  /// the real fabric from the baseline placement (the orbit's first
  /// migration), calibrated like the workload power. Shares
  /// evaluate_scheme's per-scheme cache, so a scheme already evaluated
  /// costs nothing extra. `scheme` must not be kNone. The reference stays
  /// valid until the next prepare().
  const std::vector<double>& migration_energy_map(MigrationScheme scheme);

  /// Per-tile die temperatures (C) for the baseline placement.
  std::vector<double> baseline_die_temps() const;

 private:
  std::vector<double> measure_power_map(const std::vector<int>& placement,
                                        int blocks, double scale);

  /// Everything evaluate_scheme needs that depends only on the scheme:
  /// the orbit, the measured per-segment migration-energy maps (already
  /// rotated into "energy deposited at the start of segment seg" form),
  /// and the timing/traffic summary of the first migration.
  struct MigrationMeasurement {
    std::vector<std::vector<int>> orbit;
    std::vector<std::vector<double>> migration_energy;
    double halt_mean_s = 0.0;
    double energy_mean_j = 0.0;
    int phases = 0;
    std::uint64_t state_flits = 0;
  };
  const MigrationMeasurement& measure_migration(MigrationScheme scheme);
  MigrationThermalRuntime& runtime_for(double period_s);

  ChipConfig cfg_;
  std::unique_ptr<BuiltChip> built_;
  std::unique_ptr<RcNetwork> net_;
  std::unique_ptr<SteadyStateSolver> steady_;  // factored once in prepare()
  std::vector<int> placement_;
  std::vector<double> base_power_;
  mutable std::vector<double> rise_scratch_;  // steady-solve workspace
  std::map<MigrationScheme, MigrationMeasurement> migration_cache_;
  std::map<double, std::unique_ptr<MigrationThermalRuntime>> runtime_cache_;
  double base_peak_temp_c_ = 0.0;
  double base_mean_temp_c_ = 0.0;
  double identity_peak_c_ = 0.0;
  Cycle block_cycles_ = 0;
  double calibration_scale_ = 1.0;
  bool prepared_ = false;
};

}  // namespace renoc
