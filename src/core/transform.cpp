#include "core/transform.hpp"

#include <numeric>

#include "util/check.hpp"

namespace renoc {

const char* to_string(TransformKind kind) {
  switch (kind) {
    case TransformKind::kIdentity: return "identity";
    case TransformKind::kRotation: return "rotation";
    case TransformKind::kMirrorX: return "x-mirror";
    case TransformKind::kMirrorY: return "y-mirror";
    case TransformKind::kMirrorXY: return "xy-mirror";
    case TransformKind::kShiftX: return "x-shift";
    case TransformKind::kShiftXY: return "xy-shift";
  }
  return "?";
}

namespace {

int positive_mod(int v, int m) {
  const int r = v % m;
  return r < 0 ? r + m : r;
}

}  // namespace

GridCoord Transform::apply(const GridCoord& c, const GridDim& dim) const {
  RENOC_CHECK_MSG(in_bounds(c, dim),
                  to_string(c) << " outside " << renoc::to_string(dim));
  switch (kind) {
    case TransformKind::kIdentity:
      return c;
    case TransformKind::kRotation:
      RENOC_CHECK_MSG(dim.width == dim.height,
                      "rotation requires a square mesh, got "
                          << renoc::to_string(dim));
      return GridCoord{dim.width - 1 - c.y, c.x};
    case TransformKind::kMirrorX:
      return GridCoord{dim.width - 1 - c.x, c.y};
    case TransformKind::kMirrorY:
      return GridCoord{c.x, dim.height - 1 - c.y};
    case TransformKind::kMirrorXY:
      return GridCoord{dim.width - 1 - c.x, dim.height - 1 - c.y};
    case TransformKind::kShiftX:
      return GridCoord{positive_mod(c.x + offset, dim.width), c.y};
    case TransformKind::kShiftXY:
      return GridCoord{positive_mod(c.x + offset, dim.width),
                       positive_mod(c.y + offset, dim.height)};
  }
  RENOC_FAIL("unknown transform kind");
}

std::vector<int> Transform::permutation(const GridDim& dim) const {
  std::vector<int> perm(static_cast<std::size_t>(dim.node_count()));
  for (int i = 0; i < dim.node_count(); ++i) {
    const GridCoord c = index_to_coord(i, dim);
    perm[static_cast<std::size_t>(i)] = coord_to_index(apply(c, dim), dim);
  }
  return perm;
}

std::vector<GridCoord> Transform::fixed_points(const GridDim& dim) const {
  std::vector<GridCoord> fixed;
  for (int i = 0; i < dim.node_count(); ++i) {
    const GridCoord c = index_to_coord(i, dim);
    if (apply(c, dim) == c) fixed.push_back(c);
  }
  return fixed;
}

int orbit_length(const Transform& t, const GridDim& dim) {
  const std::vector<int> perm = t.permutation(dim);
  std::vector<int> acc = identity_permutation(dim.node_count());
  for (int len = 1; len <= 4 * dim.node_count(); ++len) {
    acc = compose_permutations(acc, perm);
    bool is_identity = true;
    for (std::size_t i = 0; i < acc.size(); ++i) {
      if (acc[i] != static_cast<int>(i)) {
        is_identity = false;
        break;
      }
    }
    if (is_identity) return len;
  }
  RENOC_FAIL("orbit length not found (non-permutation?)");
}

std::vector<std::vector<int>> orbit_permutations(const Transform& t,
                                                 const GridDim& dim) {
  const int len = orbit_length(t, dim);
  std::vector<std::vector<int>> orbit;
  orbit.reserve(static_cast<std::size_t>(len));
  orbit.push_back(identity_permutation(dim.node_count()));
  const std::vector<int> step = t.permutation(dim);
  for (int k = 1; k < len; ++k)
    orbit.push_back(compose_permutations(orbit.back(), step));
  return orbit;
}

std::vector<int> compose_permutations(const std::vector<int>& a,
                                      const std::vector<int>& b) {
  RENOC_CHECK(a.size() == b.size());
  std::vector<int> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = b[static_cast<std::size_t>(a[i])];
  return out;
}

std::vector<int> invert_permutation(const std::vector<int>& a) {
  std::vector<int> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[static_cast<std::size_t>(a[i])] = static_cast<int>(i);
  return out;
}

std::vector<int> identity_permutation(int n) {
  std::vector<int> id(static_cast<std::size_t>(n));
  std::iota(id.begin(), id.end(), 0);
  return id;
}

const char* to_string(MigrationScheme scheme) {
  switch (scheme) {
    case MigrationScheme::kNone: return "static";
    case MigrationScheme::kRotation: return "Rot";
    case MigrationScheme::kMirrorX: return "X Mirror";
    case MigrationScheme::kMirrorXY: return "X-Y Mirror";
    case MigrationScheme::kShiftRight: return "Right Shift";
    case MigrationScheme::kShiftXY: return "X-Y Shift";
  }
  return "?";
}

Transform transform_of(MigrationScheme scheme) {
  switch (scheme) {
    case MigrationScheme::kNone:
      return Transform{TransformKind::kIdentity, 0};
    case MigrationScheme::kRotation:
      return Transform{TransformKind::kRotation, 0};
    case MigrationScheme::kMirrorX:
      return Transform{TransformKind::kMirrorX, 0};
    case MigrationScheme::kMirrorXY:
      return Transform{TransformKind::kMirrorXY, 0};
    case MigrationScheme::kShiftRight:
      return Transform{TransformKind::kShiftX, 1};
    case MigrationScheme::kShiftXY:
      return Transform{TransformKind::kShiftXY, 1};
  }
  RENOC_FAIL("unknown migration scheme");
}

std::vector<MigrationScheme> figure1_schemes() {
  return {MigrationScheme::kRotation, MigrationScheme::kMirrorX,
          MigrationScheme::kMirrorXY, MigrationScheme::kShiftRight,
          MigrationScheme::kShiftXY};
}

}  // namespace renoc
