// The complete runtime-reconfigurable LDPC system.
//
// Glues the pieces the way the real chip would run them: the NoC decodes
// blocks back to back; every `blocks_per_migration` blocks the controller
// halts the array at a block boundary, migrates all PE state in
// congestion-free phases, updates the I/O address translator, and decoding
// resumes at the new placement. Decoded outputs are checked against the
// golden decoder on every block — migration must never change function —
// and the throughput penalty is measured exactly as the paper defines it
// (time lost to migration over total time).
#pragma once

#include <memory>
#include <vector>

#include "core/chip_config.hpp"
#include "core/migration_controller.hpp"
#include "core/transform.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/noc_decoder.hpp"
#include "noc/fabric.hpp"

namespace renoc {

struct StreamResult {
  int blocks = 0;
  int migrations = 0;
  Cycle total_cycles = 0;
  Cycle migration_cycles = 0;
  double throughput_penalty = 0.0;  ///< migration_cycles / total_cycles
  bool all_blocks_match_golden = false;
  std::vector<int> final_placement;
};

class ReconfigurableLdpcSystem {
 public:
  /// Builds the full system for a chip configuration with the given
  /// migration scheme. The initial placement is the identity (placement
  /// quality does not matter for functional/throughput experiments; the
  /// thermal experiments use ExperimentDriver).
  ReconfigurableLdpcSystem(const ChipConfig& cfg, MigrationScheme scheme);
  ~ReconfigurableLdpcSystem();

  /// Decodes `blocks` blocks, migrating after every
  /// `blocks_per_migration` blocks (0 = never migrate).
  StreamResult run_stream(int blocks, int blocks_per_migration);

  /// The current cluster placement (changes as migrations run).
  const std::vector<int>& placement() const { return placement_; }

  /// The I/O migration unit (for transparency checks: external callers
  /// address logical PEs regardless of migration history).
  const AddressTranslator& translator() const {
    return controller_->translator();
  }

  Fabric& fabric() { return *fabric_; }
  Cycle block_cycles() const { return block_cycles_; }

 private:
  ChipConfig cfg_;
  std::unique_ptr<BuiltChip> built_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<NocLdpcDecoder> decoder_;
  std::unique_ptr<MigrationController> controller_;
  std::unique_ptr<MinSumDecoder> golden_;
  std::vector<int> placement_;
  std::vector<int> state_words_;
  Cycle block_cycles_ = 0;
};

}  // namespace renoc
