#include "core/chip_config.hpp"

#include <algorithm>

#include "ldpc/channel.hpp"
#include "ldpc/encoder.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

ChipConfig base_config(const std::string& name, int side) {
  ChipConfig cfg;
  cfg.name = name;
  cfg.dim = GridDim{side, side};
  cfg.noc.dim = cfg.dim;
  cfg.noc.buffer_depth = 4;
  cfg.noc.clock_hz = 500e6;
  cfg.ldpc_params.iterations = 20;
  cfg.ldpc_params.vn_cycles_per_edge = 1;
  cfg.ldpc_params.cn_cycles_per_edge = 1;
  cfg.ldpc_params.phase_overhead_cycles = 8;
  cfg.hotspot = date05_hotspot_params();
  cfg.placer.iterations = 20000;
  cfg.placer.comm_weight = 1e-3;
  cfg.placer.seed = 0xC0FFEE;
  const int k = cfg.dim.node_count();
  cfg.workload.vn_weights.assign(static_cast<std::size_t>(k), 1.0);
  cfg.workload.cn_weights.assign(static_cast<std::size_t>(k), 0.06);
  return cfg;
}

/// Dedicates the mesh row `y` to check-node processing: clusters whose id
/// matches the row tiles become pure CFUs (no variable nodes), carry the
/// given check-share weights (left to right), and are pinned in place —
/// the CFU row position is wired into the chip, as in the ISVLSI'05
/// decoder.
void make_cfu_row(ChipConfig& cfg, int y, const std::vector<double>& weights) {
  RENOC_CHECK(static_cast<int>(weights.size()) == cfg.dim.width);
  for (int x = 0; x < cfg.dim.width; ++x) {
    const int id = coord_to_index({x, y}, cfg.dim);
    cfg.workload.vn_weights[static_cast<std::size_t>(id)] = 0.0;
    cfg.workload.cn_weights[static_cast<std::size_t>(id)] =
        weights[static_cast<std::size_t>(x)];
    cfg.workload.pins.push_back({id, id});
  }
}

/// A hybrid BFU+CFU tile: keeps its variable-node share, adds a check
/// share, and is pinned (hybrid units are part of the fixed pipeline).
void make_hybrid(ChipConfig& cfg, const GridCoord& at, double cn_weight) {
  const int id = coord_to_index(at, cfg.dim);
  cfg.workload.cn_weights[static_cast<std::size_t>(id)] = cn_weight;
  cfg.workload.pins.push_back({id, id});
}

}  // namespace

ChipConfig config_A() {
  ChipConfig cfg = base_config("A", 4);
  cfg.ldpc_params.iterations = 21;
  cfg.workload.code_n = 2046;
  // CFU row along the die edge y=0 (adjacent to the codeword I/O pads),
  // with in-row imbalance: the leftmost CFU also hosts the I/O serializer
  // and is the heaviest unit.
  make_cfu_row(cfg, 0, {1.80, 1.38, 1.24, 1.28});
  // Hybrid tiles along the main diagonal (a second, weaker warm structure
  // aligned with the XY-shift direction).
  make_hybrid(cfg, {1, 1}, 0.30);
  make_hybrid(cfg, {2, 2}, 0.30);
  make_hybrid(cfg, {3, 3}, 0.30);
  cfg.workload.code_seed = 11;
  cfg.channel_seed = 101;
  cfg.paper_base_peak_c = 85.44;
  return cfg;
}

ChipConfig config_B() {
  ChipConfig cfg = base_config("B", 4);
  cfg.ldpc_params.iterations = 24;
  cfg.workload.code_n = 2046;
  // CFU row along the opposite die edge, flatter in-row profile, weaker
  // hybrids.
  make_cfu_row(cfg, 3, {1.20, 1.02, 1.06, 0.96});
  make_hybrid(cfg, {0, 0}, 0.30);
  make_hybrid(cfg, {1, 1}, 0.30);
  make_hybrid(cfg, {2, 2}, 0.30);
  cfg.workload.code_seed = 22;
  cfg.channel_seed = 202;
  cfg.paper_base_peak_c = 84.05;
  return cfg;
}

ChipConfig config_C() {
  ChipConfig cfg = base_config("C", 5);
  cfg.ldpc_params.iterations = 31;
  cfg.workload.code_n = 2400;
  // Distributed check processing: BFU tiles carry a sizable check share,
  // so the CFU row is warm rather than dominant.
  cfg.workload.cn_weights.assign(25, 0.12);
  // The communication-optimal CFU row is the middle row, which passes
  // through the central PE — the fixed point of rotation/mirroring.
  make_cfu_row(cfg, 2, {0.45, 0.60, 0.30, 0.46, 0.42});
  cfg.workload.code_seed = 33;
  cfg.channel_seed = 303;
  cfg.paper_base_peak_c = 75.17;
  return cfg;
}

ChipConfig config_D() {
  ChipConfig cfg = base_config("D", 5);
  cfg.ldpc_params.iterations = 33;
  cfg.workload.code_n = 2400;
  cfg.workload.cn_weights.assign(25, 0.11);
  // Check work split across two adjacent rows (a deeper pipeline):
  // broader, flatter warm band -> the lowest base temperature of the five.
  make_cfu_row(cfg, 2, {0.44, 0.59, 0.35, 0.47, 0.42});
  for (int x = 0; x < 5; ++x) {
    const int id = coord_to_index({x, 1}, cfg.dim);
    cfg.workload.vn_weights[static_cast<std::size_t>(id)] = 0.5;
    cfg.workload.cn_weights[static_cast<std::size_t>(id)] = 0.22;
    cfg.workload.pins.push_back({id, id});
  }
  cfg.workload.code_seed = 44;
  cfg.channel_seed = 404;
  cfg.paper_base_peak_c = 72.80;
  return cfg;
}

ChipConfig config_E() {
  ChipConfig cfg = base_config("E", 5);
  cfg.ldpc_params.iterations = 32;
  cfg.workload.code_n = 2400;
  cfg.workload.cn_weights.assign(25, 0.11);
  // A heavily loaded central unit (check concentration plus its full
  // bit-node share): the near-center hotspot that rotation and mirroring
  // cannot move, and the configuration where rotation goes negative.
  make_cfu_row(cfg, 2, {0.51, 0.54, 0.58, 0.54, 0.51});
  cfg.workload.code_seed = 55;
  cfg.channel_seed = 505;
  cfg.paper_base_peak_c = 75.98;
  return cfg;
}

std::vector<ChipConfig> all_configs() {
  return {config_A(), config_B(), config_C(), config_D(), config_E()};
}

ChipConfig config_by_name(const std::string& name) {
  for (ChipConfig& cfg : all_configs()) {
    if (cfg.name == name) return cfg;
  }
  RENOC_FAIL("unknown configuration '" << name << "'");
}

BuiltChip build_chip(const ChipConfig& cfg) {
  RENOC_CHECK(static_cast<int>(cfg.workload.vn_weights.size()) ==
              cfg.dim.node_count());
  RENOC_CHECK(cfg.workload.vn_weights.size() ==
              cfg.workload.cn_weights.size());
  BuiltChip built{cfg,
                  [&] {
                    Rng rng(cfg.workload.code_seed);
                    return LdpcCode::make_regular(cfg.workload.code_n,
                                                  cfg.workload.wc,
                                                  cfg.workload.wr, rng);
                  }(),
                  Partition{},
                  make_grid_floorplan(cfg.dim, date05_tile_area()),
                  {},
                  {},
                  {},
                  {}};
  built.partition = make_weighted_partition(built.code,
                                            cfg.workload.vn_weights,
                                            cfg.workload.cn_weights);
  built.cluster_ops = cluster_edge_ops(built.code, built.partition);
  built.traffic = cluster_traffic(built.code, built.partition);

  // Design-time compute-power model for the placer: ops per iteration *
  // per-op energy * iteration rate. The exact scale cancels in placement
  // (only relative power matters) but keeping real units aids debugging.
  const double iter_rate =
      cfg.noc.clock_hz /
      (2.0 * 2048.0);  // rough phases-per-second; placement-only proxy
  built.compute_power_estimate.resize(built.cluster_ops.size());
  for (std::size_t c = 0; c < built.cluster_ops.size(); ++c)
    built.compute_power_estimate[c] =
        static_cast<double>(built.cluster_ops[c]) * cfg.energy.e_pe_op *
        iter_rate;

  // One encoded block through the AWGN channel (the paper's "encoded
  // message").
  LdpcEncoder encoder(built.code);
  Rng data_rng(cfg.channel_seed);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
  for (auto& b : data) b = static_cast<std::uint8_t>(data_rng.next_below(2));
  const std::vector<std::uint8_t> codeword = encoder.encode(data);
  const double rate =
      static_cast<double>(encoder.k()) / static_cast<double>(encoder.n());
  AwgnChannel channel(cfg.ebn0_db, rate, data_rng.split());
  built.channel_llrs = quantize_llrs(channel.transmit(codeword));
  return built;
}

}  // namespace renoc
