#include "core/experiment_sweep.hpp"

#include <memory>

#include "thermal/grid_refine.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

/// Lifts a tile-level permutation to the refine-subdivided fine grid:
/// every sub-block moves with its tile, keeping its intra-tile offset
/// (refine_power spreads tile power uniformly, so the lifted permutation
/// commutes with refinement).
std::vector<int> lift_permutation(const std::vector<int>& tile_perm,
                                  const GridDim& dim, int refine) {
  const GridDim fine{dim.width * refine, dim.height * refine};
  std::vector<int> out(static_cast<std::size_t>(fine.node_count()));
  for (int ty = 0; ty < dim.height; ++ty)
    for (int tx = 0; tx < dim.width; ++tx) {
      const int src = ty * dim.width + tx;
      const int dst = tile_perm[static_cast<std::size_t>(src)];
      const int dx = dst % dim.width;
      const int dy = dst / dim.width;
      for (int sy = 0; sy < refine; ++sy)
        for (int sx = 0; sx < refine; ++sx) {
          const int fine_src =
              (ty * refine + sy) * fine.width + tx * refine + sx;
          const int fine_dst =
              (dy * refine + sy) * fine.width + dx * refine + sx;
          out[static_cast<std::size_t>(fine_src)] = fine_dst;
        }
    }
  return out;
}

}  // namespace

void ExperimentSweepConfig::validate() const {
  RENOC_CHECK_MSG(dim.width >= 1 && dim.height >= 1, "bad tile grid");
  RENOC_CHECK_MSG(tile_area > 0, "tile area must be positive");
  hotspot.validate();
  // Axis and thread checks come from util/sweep so all three harnesses
  // fail with the same pinned messages (sweep_test asserts on them).
  sweep::require_axis(!schemes.empty(), "scheme");
  sweep::require_axis(!periods_s.empty(), "period");
  sweep::require_axis(!power_scales.empty(), "power scale");
  sweep::require_axis(!refines.empty(), "refinement");
  for (const MigrationScheme s : schemes)
    if (s == MigrationScheme::kRotation)
      RENOC_CHECK_MSG(dim.width == dim.height,
                      "rotation is not closed on a non-square mesh");
  for (const double p : periods_s) {
    ThermalRunOptions topt = thermal;
    topt.period_s = p;
    topt.validate();  // also catches dt_s > period
  }
  for (const double s : power_scales)
    RENOC_CHECK_MSG(s > 0, "power scale must be positive, got " << s);
  for (const int r : refines)
    RENOC_CHECK_MSG(r >= 1, "refinement must be >= 1, got " << r);
  RENOC_CHECK_MSG(base_tile_power.empty() ||
                      static_cast<int>(base_tile_power.size()) ==
                          dim.node_count(),
                  "base power map must have one entry per tile");
  for (const double w : base_tile_power)
    RENOC_CHECK_MSG(w >= 0, "base tile power must be non-negative");
  RENOC_CHECK_MSG(synthetic_tile_power_w > 0,
                  "synthetic tile power must be positive");
  RENOC_CHECK_MSG(power_jitter >= 0 && power_jitter < 1,
                  "power jitter must be in [0, 1), got " << power_jitter);
  RENOC_CHECK_MSG(migration_energy_j >= 0,
                  "migration energy must be non-negative");
  sweep::require_threads(threads);
}

std::vector<ExperimentScenario> ExperimentSweepConfig::scenarios() const {
  // Enumerate through the shared row-major index decoder (scheme-major,
  // refinement innermost — byte-identical to the nested loops this
  // replaced), so a scenario index means the same cell here, in the
  // service's shards, and in any replay.
  const std::vector<std::int64_t> shape = {
      static_cast<std::int64_t>(schemes.size()),
      static_cast<std::int64_t>(periods_s.size()),
      static_cast<std::int64_t>(power_scales.size()),
      static_cast<std::int64_t>(refines.size())};
  const std::int64_t total = sweep::axis_product(shape);
  std::vector<ExperimentScenario> out;
  out.reserve(static_cast<std::size_t>(total));
  std::vector<std::int64_t> d;
  for (std::int64_t i = 0; i < total; ++i) {
    sweep::decode_scenario_index(i, shape, d);
    ExperimentScenario sc;
    sc.scheme = schemes[static_cast<std::size_t>(d[0])];
    sc.period_s = periods_s[static_cast<std::size_t>(d[1])];
    sc.power_scale = power_scales[static_cast<std::size_t>(d[2])];
    sc.refine = refines[static_cast<std::size_t>(d[3])];
    out.push_back(sc);
  }
  return out;
}

Rng experiment_scenario_rng(std::uint64_t seed, int scenario_index) {
  RENOC_CHECK(scenario_index >= 0);
  // Stateless derivation (same idiom as ber_block_rng and
  // sweep_scenario_rng): any scenario's stream is reachable in O(1), so
  // replaying one cell never re-simulates the grid before it.
  return Rng(derive_stream_seed(seed,
                                static_cast<std::uint64_t>(scenario_index)));
}

std::vector<double> experiment_scenario_power(
    const ExperimentSweepConfig& cfg, const ExperimentScenario& scenario,
    int scenario_index) {
  const auto tiles = static_cast<std::size_t>(cfg.dim.node_count());
  std::vector<double> power(tiles, cfg.synthetic_tile_power_w);
  if (!cfg.base_tile_power.empty()) power = cfg.base_tile_power;
  Rng rng = experiment_scenario_rng(cfg.seed, scenario_index);
  for (std::size_t i = 0; i < tiles; ++i) {
    double factor = 1.0;
    if (cfg.power_jitter > 0)
      factor += cfg.power_jitter * (2.0 * rng.next_double() - 1.0);
    power[i] *= scenario.power_scale * factor;
  }
  return power;
}

ExperimentSweepPoint run_experiment_scenario(
    const ExperimentScenario& scenario, const ExperimentSweepConfig& cfg,
    int scenario_index) {
  ExperimentSweepPoint point;
  point.scenario = scenario;
  point.scenario_index = scenario_index;

  const std::vector<double> tile_power =
      experiment_scenario_power(cfg, scenario, scenario_index);

  const RefinedThermalModel model(cfg.dim, cfg.tile_area, cfg.hotspot,
                                  scenario.refine);
  const std::vector<double> fine_power = model.refine_power(tile_power);
  const int fine_nodes = model.fine_dim().node_count();
  point.fine_nodes = fine_nodes;

  // Tile-level orbit, lifted to the refined grid.
  std::vector<std::vector<int>> orbit;
  if (scenario.scheme == MigrationScheme::kNone) {
    orbit.push_back(identity_permutation(fine_nodes));
  } else {
    const auto tile_orbit =
        orbit_permutations(transform_of(scenario.scheme), cfg.dim);
    orbit.reserve(tile_orbit.size());
    for (const auto& perm : tile_orbit)
      orbit.push_back(lift_permutation(perm, cfg.dim, scenario.refine));
  }
  point.orbit_length = static_cast<int>(orbit.size());

  std::vector<std::vector<double>> migration_energy;
  if (scenario.scheme != MigrationScheme::kNone &&
      cfg.migration_energy_j > 0) {
    migration_energy.assign(
        orbit.size(),
        std::vector<double>(static_cast<std::size_t>(fine_nodes),
                            cfg.migration_energy_j / fine_nodes));
  }

  ThermalRunOptions topt = cfg.thermal;
  topt.period_s = scenario.period_s;
  const MigrationThermalRuntime runtime(model.network(), topt);

  const ThermalRunResult r = runtime.run(fine_power, orbit, migration_energy);
  point.peak_temp_c = r.peak_temp_c;
  point.mean_temp_c = r.mean_temp_c;
  point.ripple_c = r.ripple_c;
  point.steady_peak_of_avg_c = r.steady_peak_of_avg_c;
  point.orbits_run = r.orbits_run;
  point.converged = r.converged;

  // Static baseline of the same map (the runtime's static shortcut; the
  // factorizations are already cached in `runtime`). A kNone scenario's
  // main run *is* the static run, so reuse it rather than solving twice.
  const ThermalRunResult stat =
      scenario.scheme == MigrationScheme::kNone
          ? r
          : runtime.run(fine_power, {identity_permutation(fine_nodes)}, {});
  point.static_peak_c = stat.peak_temp_c;
  point.reduction_c = point.static_peak_c - point.peak_temp_c;
  return point;
}

std::vector<ExperimentSweepPoint> run_experiment_sweep(
    const ExperimentSweepConfig& cfg) {
  cfg.validate();
  const std::vector<ExperimentScenario> grid = cfg.scenarios();
  std::vector<ExperimentSweepPoint> results(grid.size());

  // Scenario-level parallelism via the shared sweep pool: each scenario is
  // co-simulated end to end by one worker into its preassigned slot, so
  // the merge is the identity and any schedule yields identical results.
  // The pool captures a scenario failure (e.g. a singular factorization
  // from a pathological config) and rethrows it after the join.
  sweep::parallel_for_scenarios(
      static_cast<std::int64_t>(grid.size()), cfg.threads,
      [&](std::int64_t i) {
        results[static_cast<std::size_t>(i)] = run_experiment_scenario(
            grid[static_cast<std::size_t>(i)], cfg, static_cast<int>(i));
      });
  return results;
}

namespace {

// Record layout for the sweep service: counts as raw words, temperatures
// as pack_double bit patterns, so records round-trip bit-exactly through
// the hex-string JSON transport.
enum ExperimentWord {
  kOrbitLength = 0,
  kFineNodes,
  kStaticPeak,
  kPeakTemp,
  kReduction,
  kMeanTemp,
  kRipple,
  kSteadyPeakOfAvg,
  kOrbitsRun,
  kConverged,
};
constexpr int kExperimentRecordWords = 10;

}  // namespace

sweep::SweepSpec make_experiment_sweep_spec(
    const ExperimentSweepConfig& cfg) {
  cfg.validate();
  sweep::SweepSpec spec;
  const auto grid =
      std::make_shared<const std::vector<ExperimentScenario>>(
          cfg.scenarios());
  spec.enumerated = static_cast<std::int64_t>(grid->size());
  spec.record_words = kExperimentRecordWords;

  // Everything a scenario's results depend on feeds the digest; threads
  // (and the service's shard/checkpoint geometry) are excluded because
  // results are invariant in them — a checkpoint written at one thread
  // count must resume at another.
  sweep::DigestBuilder digest;
  digest.fold_string("experiment");
  digest.fold(cfg.seed);
  digest.fold_int(cfg.dim.width);
  digest.fold_int(cfg.dim.height);
  digest.fold_real(cfg.tile_area);
  for (const MigrationScheme s : cfg.schemes)
    digest.fold_int(static_cast<int>(s));
  for (const double p : cfg.periods_s) digest.fold_real(p);
  for (const double s : cfg.power_scales) digest.fold_real(s);
  for (const int r : cfg.refines) digest.fold_int(r);
  digest.fold_int(static_cast<long long>(cfg.base_tile_power.size()));
  for (const double w : cfg.base_tile_power) digest.fold_real(w);
  digest.fold_real(cfg.synthetic_tile_power_w);
  digest.fold_real(cfg.power_jitter);
  digest.fold_real(cfg.migration_energy_j);
  digest.fold_real(cfg.thermal.dt_s);
  digest.fold_int(cfg.thermal.min_orbits);
  digest.fold_int(cfg.thermal.max_orbits);
  digest.fold_real(cfg.thermal.tol_c);
  digest.fold_real(cfg.hotspot.t_die);
  digest.fold_real(cfg.hotspot.k_die);
  digest.fold_real(cfg.hotspot.c_die);
  digest.fold_real(cfg.hotspot.t_interface);
  digest.fold_real(cfg.hotspot.k_interface);
  digest.fold_real(cfg.hotspot.s_spreader);
  digest.fold_real(cfg.hotspot.t_spreader);
  digest.fold_real(cfg.hotspot.s_sink);
  digest.fold_real(cfg.hotspot.t_sink);
  digest.fold_real(cfg.hotspot.r_convec);
  spec.config_digest = digest.digest();

  spec.make_runner = [&cfg, grid]() {
    return [&cfg, grid](std::int64_t scenario, std::uint64_t* words) {
      const ExperimentSweepPoint p = run_experiment_scenario(
          (*grid)[static_cast<std::size_t>(scenario)], cfg,
          static_cast<int>(scenario));
      words[kOrbitLength] = static_cast<std::uint64_t>(p.orbit_length);
      words[kFineNodes] = static_cast<std::uint64_t>(p.fine_nodes);
      words[kStaticPeak] = sweep::pack_double(p.static_peak_c);
      words[kPeakTemp] = sweep::pack_double(p.peak_temp_c);
      words[kReduction] = sweep::pack_double(p.reduction_c);
      words[kMeanTemp] = sweep::pack_double(p.mean_temp_c);
      words[kRipple] = sweep::pack_double(p.ripple_c);
      words[kSteadyPeakOfAvg] = sweep::pack_double(p.steady_peak_of_avg_c);
      words[kOrbitsRun] = static_cast<std::uint64_t>(p.orbits_run);
      words[kConverged] = p.converged ? 1u : 0u;
    };
  };
  return spec;
}

ExperimentSweepPoint experiment_point_from_record(
    const ExperimentScenario& scenario, const sweep::ScenarioRecord& rec) {
  RENOC_CHECK_MSG(rec.outcome == sweep::Outcome::kCompleted,
                  "cannot decode a " << sweep::to_string(rec.outcome)
                                     << " record into a sweep point");
  RENOC_CHECK_MSG(
      rec.words.size() == static_cast<std::size_t>(kExperimentRecordWords),
      "experiment record must have " << kExperimentRecordWords
                                     << " words, got " << rec.words.size());
  ExperimentSweepPoint p;
  p.scenario = scenario;
  p.scenario_index = static_cast<int>(rec.scenario);
  p.orbit_length = static_cast<int>(rec.words[kOrbitLength]);
  p.fine_nodes = static_cast<int>(rec.words[kFineNodes]);
  p.static_peak_c = sweep::unpack_double(rec.words[kStaticPeak]);
  p.peak_temp_c = sweep::unpack_double(rec.words[kPeakTemp]);
  p.reduction_c = sweep::unpack_double(rec.words[kReduction]);
  p.mean_temp_c = sweep::unpack_double(rec.words[kMeanTemp]);
  p.ripple_c = sweep::unpack_double(rec.words[kRipple]);
  p.steady_peak_of_avg_c = sweep::unpack_double(rec.words[kSteadyPeakOfAvg]);
  p.orbits_run = static_cast<int>(rec.words[kOrbitsRun]);
  p.converged = rec.words[kConverged] != 0;
  return p;
}

}  // namespace renoc
