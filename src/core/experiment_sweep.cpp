#include "core/experiment_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "thermal/grid_refine.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

/// Lifts a tile-level permutation to the refine-subdivided fine grid:
/// every sub-block moves with its tile, keeping its intra-tile offset
/// (refine_power spreads tile power uniformly, so the lifted permutation
/// commutes with refinement).
std::vector<int> lift_permutation(const std::vector<int>& tile_perm,
                                  const GridDim& dim, int refine) {
  const GridDim fine{dim.width * refine, dim.height * refine};
  std::vector<int> out(static_cast<std::size_t>(fine.node_count()));
  for (int ty = 0; ty < dim.height; ++ty)
    for (int tx = 0; tx < dim.width; ++tx) {
      const int src = ty * dim.width + tx;
      const int dst = tile_perm[static_cast<std::size_t>(src)];
      const int dx = dst % dim.width;
      const int dy = dst / dim.width;
      for (int sy = 0; sy < refine; ++sy)
        for (int sx = 0; sx < refine; ++sx) {
          const int fine_src =
              (ty * refine + sy) * fine.width + tx * refine + sx;
          const int fine_dst =
              (dy * refine + sy) * fine.width + dx * refine + sx;
          out[static_cast<std::size_t>(fine_src)] = fine_dst;
        }
    }
  return out;
}

}  // namespace

void ExperimentSweepConfig::validate() const {
  RENOC_CHECK_MSG(dim.width >= 1 && dim.height >= 1, "bad tile grid");
  RENOC_CHECK_MSG(tile_area > 0, "tile area must be positive");
  hotspot.validate();
  RENOC_CHECK_MSG(!schemes.empty(), "sweep needs at least one scheme");
  RENOC_CHECK_MSG(!periods_s.empty(), "sweep needs at least one period");
  RENOC_CHECK_MSG(!power_scales.empty(),
                  "sweep needs at least one power scale");
  RENOC_CHECK_MSG(!refines.empty(), "sweep needs at least one refinement");
  for (const MigrationScheme s : schemes)
    if (s == MigrationScheme::kRotation)
      RENOC_CHECK_MSG(dim.width == dim.height,
                      "rotation is not closed on a non-square mesh");
  for (const double p : periods_s) {
    ThermalRunOptions topt = thermal;
    topt.period_s = p;
    topt.validate();  // also catches dt_s > period
  }
  for (const double s : power_scales)
    RENOC_CHECK_MSG(s > 0, "power scale must be positive, got " << s);
  for (const int r : refines)
    RENOC_CHECK_MSG(r >= 1, "refinement must be >= 1, got " << r);
  RENOC_CHECK_MSG(base_tile_power.empty() ||
                      static_cast<int>(base_tile_power.size()) ==
                          dim.node_count(),
                  "base power map must have one entry per tile");
  for (const double w : base_tile_power)
    RENOC_CHECK_MSG(w >= 0, "base tile power must be non-negative");
  RENOC_CHECK_MSG(synthetic_tile_power_w > 0,
                  "synthetic tile power must be positive");
  RENOC_CHECK_MSG(power_jitter >= 0 && power_jitter < 1,
                  "power jitter must be in [0, 1), got " << power_jitter);
  RENOC_CHECK_MSG(migration_energy_j >= 0,
                  "migration energy must be non-negative");
  RENOC_CHECK(threads >= 1);
}

std::vector<ExperimentScenario> ExperimentSweepConfig::scenarios() const {
  std::vector<ExperimentScenario> out;
  out.reserve(schemes.size() * periods_s.size() * power_scales.size() *
              refines.size());
  for (const MigrationScheme scheme : schemes)
    for (const double period : periods_s)
      for (const double scale : power_scales)
        for (const int refine : refines) {
          ExperimentScenario sc;
          sc.scheme = scheme;
          sc.period_s = period;
          sc.power_scale = scale;
          sc.refine = refine;
          out.push_back(sc);
        }
  return out;
}

Rng experiment_scenario_rng(std::uint64_t seed, int scenario_index) {
  RENOC_CHECK(scenario_index >= 0);
  // Stateless derivation (same idiom as ber_block_rng and
  // sweep_scenario_rng): any scenario's stream is reachable in O(1), so
  // replaying one cell never re-simulates the grid before it.
  return Rng(derive_stream_seed(seed,
                                static_cast<std::uint64_t>(scenario_index)));
}

std::vector<double> experiment_scenario_power(
    const ExperimentSweepConfig& cfg, const ExperimentScenario& scenario,
    int scenario_index) {
  const auto tiles = static_cast<std::size_t>(cfg.dim.node_count());
  std::vector<double> power(tiles, cfg.synthetic_tile_power_w);
  if (!cfg.base_tile_power.empty()) power = cfg.base_tile_power;
  Rng rng = experiment_scenario_rng(cfg.seed, scenario_index);
  for (std::size_t i = 0; i < tiles; ++i) {
    double factor = 1.0;
    if (cfg.power_jitter > 0)
      factor += cfg.power_jitter * (2.0 * rng.next_double() - 1.0);
    power[i] *= scenario.power_scale * factor;
  }
  return power;
}

ExperimentSweepPoint run_experiment_scenario(
    const ExperimentScenario& scenario, const ExperimentSweepConfig& cfg,
    int scenario_index) {
  ExperimentSweepPoint point;
  point.scenario = scenario;
  point.scenario_index = scenario_index;

  const std::vector<double> tile_power =
      experiment_scenario_power(cfg, scenario, scenario_index);

  const RefinedThermalModel model(cfg.dim, cfg.tile_area, cfg.hotspot,
                                  scenario.refine);
  const std::vector<double> fine_power = model.refine_power(tile_power);
  const int fine_nodes = model.fine_dim().node_count();
  point.fine_nodes = fine_nodes;

  // Tile-level orbit, lifted to the refined grid.
  std::vector<std::vector<int>> orbit;
  if (scenario.scheme == MigrationScheme::kNone) {
    orbit.push_back(identity_permutation(fine_nodes));
  } else {
    const auto tile_orbit =
        orbit_permutations(transform_of(scenario.scheme), cfg.dim);
    orbit.reserve(tile_orbit.size());
    for (const auto& perm : tile_orbit)
      orbit.push_back(lift_permutation(perm, cfg.dim, scenario.refine));
  }
  point.orbit_length = static_cast<int>(orbit.size());

  std::vector<std::vector<double>> migration_energy;
  if (scenario.scheme != MigrationScheme::kNone &&
      cfg.migration_energy_j > 0) {
    migration_energy.assign(
        orbit.size(),
        std::vector<double>(static_cast<std::size_t>(fine_nodes),
                            cfg.migration_energy_j / fine_nodes));
  }

  ThermalRunOptions topt = cfg.thermal;
  topt.period_s = scenario.period_s;
  const MigrationThermalRuntime runtime(model.network(), topt);

  const ThermalRunResult r = runtime.run(fine_power, orbit, migration_energy);
  point.peak_temp_c = r.peak_temp_c;
  point.mean_temp_c = r.mean_temp_c;
  point.ripple_c = r.ripple_c;
  point.steady_peak_of_avg_c = r.steady_peak_of_avg_c;
  point.orbits_run = r.orbits_run;
  point.converged = r.converged;

  // Static baseline of the same map (the runtime's static shortcut; the
  // factorizations are already cached in `runtime`). A kNone scenario's
  // main run *is* the static run, so reuse it rather than solving twice.
  const ThermalRunResult stat =
      scenario.scheme == MigrationScheme::kNone
          ? r
          : runtime.run(fine_power, {identity_permutation(fine_nodes)}, {});
  point.static_peak_c = stat.peak_temp_c;
  point.reduction_c = point.static_peak_c - point.peak_temp_c;
  return point;
}

std::vector<ExperimentSweepPoint> run_experiment_sweep(
    const ExperimentSweepConfig& cfg) {
  cfg.validate();
  const std::vector<ExperimentScenario> grid = cfg.scenarios();
  std::vector<ExperimentSweepPoint> results(grid.size());

  // Scenario-level parallelism: each scenario is co-simulated end to end
  // by one worker into its preassigned slot, so the merge is the identity
  // and any schedule yields identical results. A scenario failure (e.g. a
  // singular factorization from a pathological config) is captured and
  // rethrown after the join — an exception escaping a worker thread would
  // std::terminate the process.
  std::atomic<int> cursor{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) break;
      const int i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= static_cast<int>(grid.size())) break;
      try {
        results[static_cast<std::size_t>(i)] =
            run_experiment_scenario(grid[static_cast<std::size_t>(i)], cfg,
                                    i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  const int workers = std::min<int>(cfg.threads,
                                    static_cast<int>(grid.size()));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace renoc
