#include "core/thermal_runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/check.hpp"
#include "util/matrix.hpp"
#include "util/sparse.hpp"

namespace renoc {

void ThermalRunOptions::validate() const {
  RENOC_CHECK(period_s > 0 && dt_s > 0);
  RENOC_CHECK(dt_s <= period_s);
  RENOC_CHECK(min_orbits >= 1 && max_orbits >= min_orbits);
  RENOC_CHECK(tol_c > 0);
}

// Streamed orbit-integration state: factorizations plus every buffer the
// hot loop touches, so a warmed engine runs without heap allocation. The
// sparse and dense backends share one code path through `order` — the
// factor's elimination order for the sparse backend (state, power maps,
// and C/dt all live permuted, so SparseLdlt::solve_permuted_in_place
// needs no per-step permutation passes), the identity for the dense LU
// fallback.
struct MigrationThermalRuntime::Engine {
  Engine(const RcNetwork& net, double dt) : steady(net) {
    const int n = net.node_count();
    // Shared assembly helpers (thermal/solver.cpp uses the same ones), so
    // the engine's step matrix is bit-identical to the reference path's.
    const std::vector<double> c_over_dt = step_capacitance_diagonal(net, dt);

    switch (resolve_solver_backend(SolverBackend::kAuto, n)) {
      case SolverBackend::kSparse: {
        const SparseMatrix step =
            net.conductance_sparse().plus_diagonal(c_over_dt);
        ldlt = std::make_unique<SparseLdlt>(step,
                                            minimum_degree_ordering(step));
        order = ldlt->permutation();
        break;
      }
      case SolverBackend::kDense:
      case SolverBackend::kAuto: {
        lu = std::make_unique<LuFactorization>(
            dense_step_matrix(net, c_over_dt));
        order.resize(static_cast<std::size_t>(n));
        for (int k = 0; k < n; ++k) order[static_cast<std::size_t>(k)] = k;
        break;
      }
    }

    cd_ord.resize(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k)
      cd_ord[static_cast<std::size_t>(k)] =
          c_over_dt[static_cast<std::size_t>(order[static_cast<std::size_t>(
              k)])];
    for (int k = 0; k < n; ++k)
      if (order[static_cast<std::size_t>(k)] < net.die_count())
        die_slot.push_back(k);
  }

  SteadyStateSolver steady;
  std::unique_ptr<SparseLdlt> ldlt;     // minimum-degree (C/dt + G), or
  std::unique_ptr<LuFactorization> lu;  // ... the dense LU fallback
  std::vector<int> order;     // order[k] = original node streamed at slot k
  std::vector<double> cd_ord;  // C/dt in slot order
  std::vector<int> die_slot;  // slots holding die nodes, ascending

  // Per-run workspaces (sized on first use, reused afterwards).
  std::vector<double> moved;        // one segment's permuted die map
  std::vector<double> avg;          // orbit-averaged die map
  std::vector<double> steady_rise;  // steady state of avg (natural order)
  std::vector<double> static_rise;  // static-case solve (natural order)
  std::vector<double> seg_power;    // L x n segment powers, slot order
  std::vector<double> spike_power;  // L x n spiked powers, slot order
  std::vector<double> state;        // n, slot order
  std::vector<int> perm_seen;       // epoch marks for orbit validation
  int perm_epoch = 0;
};

MigrationThermalRuntime::MigrationThermalRuntime(const RcNetwork& net,
                                                 ThermalRunOptions options)
    : net_(&net), options_(options) {
  options_.validate();
}

MigrationThermalRuntime::~MigrationThermalRuntime() = default;

int MigrationThermalRuntime::steps_per_period() const {
  return std::max(
      1, static_cast<int>(std::ceil(options_.period_s / options_.dt_s)));
}

ThermalRunResult MigrationThermalRuntime::run(
    const std::vector<double>& base_power,
    const std::vector<std::vector<int>>& orbit,
    const std::vector<std::vector<double>>& migration_energy) const {
  const RcNetwork& net = *net_;
  RENOC_CHECK(static_cast<int>(base_power.size()) == net.die_count());
  RENOC_CHECK(!orbit.empty());
  const std::size_t L = orbit.size();
  RENOC_CHECK_MSG(migration_energy.empty() || migration_energy.size() == L,
                  "need one migration-energy map per orbit step");

  const int steps = steps_per_period();
  const double dt = options_.period_s / steps;
  if (!engine_) engine_ = std::make_unique<Engine>(net, dt);
  Engine& e = *engine_;

  const int n = net.node_count();
  const int die = net.die_count();
  const auto un = static_cast<std::size_t>(n);
  const auto ud = static_cast<std::size_t>(die);

  // Segment power maps in slot order, plus the orbit average (same
  // element-wise sum/scale order as the reference path's average_maps).
  e.perm_seen.resize(ud, 0);
  e.moved.resize(ud);
  e.avg.assign(ud, 0.0);
  e.seg_power.resize(L * un);
  for (std::size_t seg = 0; seg < L; ++seg) {
    const std::vector<int>& perm = orbit[seg];
    RENOC_CHECK_MSG(perm.size() == ud,
                    "orbit permutation " << seg << " has size " << perm.size()
                                         << ", expected " << die);
    ++e.perm_epoch;
    for (std::size_t i = 0; i < ud; ++i) {
      const int p = perm[i];
      RENOC_CHECK_MSG(p >= 0 && p < die,
                      "permutation entry " << p << " out of range");
      RENOC_CHECK_MSG(e.perm_seen[static_cast<std::size_t>(p)] !=
                          e.perm_epoch,
                      "permutation repeats entry " << p);
      e.perm_seen[static_cast<std::size_t>(p)] = e.perm_epoch;
      e.moved[static_cast<std::size_t>(p)] = base_power[i];
    }
    for (std::size_t i = 0; i < ud; ++i) e.avg[i] += e.moved[i];
    double* sp = &e.seg_power[seg * un];
    for (std::size_t k = 0; k < un; ++k) {
      const int orig = e.order[k];
      sp[k] = orig < die ? e.moved[static_cast<std::size_t>(orig)] : 0.0;
    }
  }
  const double inv_l = 1.0 / static_cast<double>(L);
  for (std::size_t i = 0; i < ud; ++i) e.avg[i] *= inv_l;
  if (!migration_energy.empty()) {
    for (const auto& e_map : migration_energy) {
      RENOC_CHECK(e_map.size() == base_power.size());
      for (std::size_t i = 0; i < ud; ++i)
        e.avg[i] += e_map[i] / (options_.period_s * static_cast<double>(L));
    }
  }

  e.steady.solve_die_power_into(e.avg, e.steady_rise);

  ThermalRunResult result;
  result.steady_peak_of_avg_c =
      net.ambient() + net.peak_die_rise(e.steady_rise);

  // Static case: a single identity segment with no migration energy is in
  // steady state already (e.moved still holds segment 0's map here).
  const bool is_static = (L == 1) && migration_energy.empty();
  if (is_static) {
    e.steady.solve_die_power_into(e.moved, e.static_rise);
    result.peak_temp_c = net.ambient() + net.peak_die_rise(e.static_rise);
    result.mean_temp_c = net.ambient() + net.mean_die_rise(e.static_rise);
    result.ripple_c = 0.0;
    result.orbits_run = 0;
    result.converged = true;
    return result;
  }

  // Migration spikes: energy / dt extra watts on the first step of each
  // segment, pre-folded into slot-order power vectors.
  const bool spiked = !migration_energy.empty();
  if (spiked) {
    e.spike_power.resize(L * un);
    for (std::size_t seg = 0; seg < L; ++seg) {
      const std::vector<double>& e_map = migration_energy[seg];
      const double* sp = &e.seg_power[seg * un];
      double* spk = &e.spike_power[seg * un];
      for (std::size_t k = 0; k < un; ++k) {
        const int orig = e.order[k];
        spk[k] = orig < die
                     ? sp[k] + e_map[static_cast<std::size_t>(orig)] / dt
                     : sp[k];
      }
    }
  }

  // Seed the transient state from the averaged steady solution and stream
  // the backward-Euler orbit loop: fused RHS build, permutation-free
  // solve, and a single fused peak/mean gather over the die slots.
  e.state.resize(un);
  for (std::size_t k = 0; k < un; ++k)
    e.state[k] =
        e.steady_rise[static_cast<std::size_t>(e.order[k])];

  const double ambient = net.ambient();
  const double* cd = e.cd_ord.data();
  double prev_orbit_peak = result.steady_peak_of_avg_c;
  double mean_accum = 0.0;
  std::uint64_t mean_samples = 0;

  // renoc-hot-begin (orbit streaming loop: L segments x steps solves/orbit)
  for (int orbit_idx = 0; orbit_idx < options_.max_orbits; ++orbit_idx) {
    double orbit_peak = -1e300;
    double peak_node_min = 1e300;  // min over time of the instantaneous peak
    for (std::size_t seg = 0; seg < L; ++seg) {
      const double* seg_p = &e.seg_power[seg * un];
      const double* spike_p = spiked ? &e.spike_power[seg * un] : nullptr;
      for (int step = 0; step < steps; ++step) {
        const double* p = (step == 0 && spiked) ? spike_p : seg_p;
        double* st = e.state.data();
        // Fused in-place RHS build: each slot is read once and overwritten,
        // so the step needs no second n-vector in cache.
        for (std::size_t k = 0; k < un; ++k) st[k] = cd[k] * st[k] + p[k];
        if (e.ldlt)
          e.ldlt->solve_permuted_in_place(st);
        else
          e.lu->solve_in_place(e.state);
        double peak_rise = -1e300;
        double sum = 0.0;
        for (const int slot : e.die_slot) {
          const double v = st[slot];
          peak_rise = std::max(peak_rise, v);
          sum += v;
        }
        const double peak_abs = ambient + peak_rise;
        orbit_peak = std::max(orbit_peak, peak_abs);
        peak_node_min = std::min(peak_node_min, peak_abs);
        mean_accum += ambient + sum / die;
        ++mean_samples;
      }
    }
    result.orbits_run = orbit_idx + 1;
    result.peak_temp_c = orbit_peak;
    result.ripple_c = orbit_peak - peak_node_min;
    if (orbit_idx + 1 >= options_.min_orbits &&
        std::fabs(orbit_peak - prev_orbit_peak) < options_.tol_c) {
      result.converged = true;
      break;
    }
    prev_orbit_peak = orbit_peak;
  }
  // renoc-hot-end
  result.mean_temp_c =
      mean_samples ? mean_accum / static_cast<double>(mean_samples) : 0.0;
  return result;
}

}  // namespace renoc
