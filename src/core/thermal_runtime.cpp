#include "core/thermal_runtime.hpp"

#include <algorithm>
#include <cmath>

#include "power/power_map.hpp"
#include "util/check.hpp"

namespace renoc {

void ThermalRunOptions::validate() const {
  RENOC_CHECK(period_s > 0 && dt_s > 0);
  RENOC_CHECK(dt_s <= period_s);
  RENOC_CHECK(min_orbits >= 1 && max_orbits >= min_orbits);
  RENOC_CHECK(tol_c > 0);
}

MigrationThermalRuntime::MigrationThermalRuntime(const RcNetwork& net,
                                                 ThermalRunOptions options)
    : net_(&net), options_(options) {
  options_.validate();
}

ThermalRunResult MigrationThermalRuntime::run(
    const std::vector<double>& base_power,
    const std::vector<std::vector<int>>& orbit,
    const std::vector<std::vector<double>>& migration_energy) const {
  const RcNetwork& net = *net_;
  RENOC_CHECK(static_cast<int>(base_power.size()) == net.die_count());
  RENOC_CHECK(!orbit.empty());
  const std::size_t L = orbit.size();
  RENOC_CHECK_MSG(migration_energy.empty() || migration_energy.size() == L,
                  "need one migration-energy map per orbit step");

  // Per-segment power maps.
  std::vector<std::vector<double>> segment_power;
  segment_power.reserve(L);
  for (const auto& perm : orbit)
    segment_power.push_back(apply_permutation(base_power, perm));

  // Orbit-averaged map including amortized migration energy.
  std::vector<double> avg = average_maps(segment_power);
  if (!migration_energy.empty()) {
    for (const auto& e_map : migration_energy) {
      RENOC_CHECK(e_map.size() == base_power.size());
      for (std::size_t i = 0; i < avg.size(); ++i)
        avg[i] += e_map[i] / (options_.period_s * static_cast<double>(L));
    }
  }

  SteadyStateSolver steady(net);
  const std::vector<double> steady_rise = steady.solve_die_power(avg);

  ThermalRunResult result;
  result.steady_peak_of_avg_c =
      net.ambient() + net.peak_die_rise(steady_rise);

  // Static case: a single identity segment with no migration energy is in
  // steady state already.
  const bool is_static = (L == 1) && migration_energy.empty();
  if (is_static) {
    const std::vector<double> rise = steady.solve_die_power(segment_power[0]);
    result.peak_temp_c = net.ambient() + net.peak_die_rise(rise);
    result.mean_temp_c = net.ambient() + net.mean_die_rise(rise);
    result.ripple_c = 0.0;
    result.orbits_run = 0;
    result.converged = true;
    return result;
  }

  // Snap dt so an integer number of steps covers one period.
  const int steps_per_period = std::max(
      1, static_cast<int>(std::ceil(options_.period_s / options_.dt_s)));
  const double dt = options_.period_s / steps_per_period;
  TransientSolver transient(net, dt);
  transient.set_state(steady_rise);

  double prev_orbit_peak = result.steady_peak_of_avg_c;
  double mean_accum = 0.0;
  std::uint64_t mean_samples = 0;

  for (int orbit_idx = 0; orbit_idx < options_.max_orbits; ++orbit_idx) {
    double orbit_peak = -1e300;
    double peak_node_min = 1e300;  // min over time of the instantaneous peak
    for (std::size_t seg = 0; seg < L; ++seg) {
      // Base power for this segment, with the migration spike folded into
      // the first step (energy / dt extra watts for one step).
      const std::vector<double>& seg_power = segment_power[seg];
      for (int step = 0; step < steps_per_period; ++step) {
        if (step == 0 && !migration_energy.empty()) {
          std::vector<double> spiked = seg_power;
          const auto& e_map = migration_energy[seg];
          for (std::size_t i = 0; i < spiked.size(); ++i)
            spiked[i] += e_map[i] / dt;
          transient.step_die_power(spiked);
        } else {
          transient.step_die_power(seg_power);
        }
        const double peak_rise = net.peak_die_rise(transient.state());
        orbit_peak = std::max(orbit_peak, net.ambient() + peak_rise);
        peak_node_min =
            std::min(peak_node_min, net.ambient() + peak_rise);
        mean_accum += net.ambient() + net.mean_die_rise(transient.state());
        ++mean_samples;
      }
    }
    result.orbits_run = orbit_idx + 1;
    result.peak_temp_c = orbit_peak;
    result.ripple_c = orbit_peak - peak_node_min;
    if (orbit_idx + 1 >= options_.min_orbits &&
        std::fabs(orbit_peak - prev_orbit_peak) < options_.tol_c) {
      result.converged = true;
      break;
    }
    prev_orbit_peak = orbit_peak;
  }
  result.mean_temp_c =
      mean_samples ? mean_accum / static_cast<double>(mean_samples) : 0.0;
  return result;
}

}  // namespace renoc
