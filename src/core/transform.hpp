// Table 1 of the paper: the plane transformation functions.
//
//                    New X Coordinate   New Y Coordinate
//   Rotation         N-1-Y              X
//   X Mirroring      N-1-X              Y
//   X Translation    X + Offset         Y       (mod N)
//
// The paper's insight (Section 2.2) is that migrations which preserve the
// workloads' relative positions are exactly the symmetries of the plane —
// rotation, mirroring, and translation — so the new position of every
// workload "can be algebraically determined from the current position".
// This module implements those functions, their composition (accumulated
// migration state), and the five concrete schemes evaluated in Figure 1:
// Rot, X Mirror, X-Y Mirror, Right Shift, X-Y Shift.
#pragma once

#include <string>
#include <vector>

#include "floorplan/grid.hpp"

namespace renoc {

enum class TransformKind {
  kIdentity,
  kRotation,   ///< 90 degrees: (x,y) -> (N-1-y, x); square meshes only
  kMirrorX,    ///< (x,y) -> (N-1-x, y)
  kMirrorY,    ///< (x,y) -> (x, N-1-y)
  kMirrorXY,   ///< both mirrors: (x,y) -> (N-1-x, N-1-y)
  kShiftX,     ///< (x,y) -> ((x+offset) mod W, y)
  kShiftXY,    ///< (x,y) -> ((x+offset) mod W, (y+offset) mod H)
};

const char* to_string(TransformKind kind);

/// A single migration function (Table 1 row, with offset for translations).
struct Transform {
  TransformKind kind = TransformKind::kIdentity;
  int offset = 1;  ///< translation distance for kShiftX / kShiftXY

  /// New coordinate of the workload currently at `c`. Throws for rotation
  /// on a non-square mesh (the operation is not closed there).
  GridCoord apply(const GridCoord& c, const GridDim& dim) const;

  /// The transform as a permutation: perm[i] = destination tile of the
  /// workload currently on tile i.
  std::vector<int> permutation(const GridDim& dim) const;

  /// Coordinates that map to themselves (e.g. the central PE of an odd
  /// mesh under rotation/mirroring — the paper's explanation for why those
  /// schemes cannot cool central hotspots).
  std::vector<GridCoord> fixed_points(const GridDim& dim) const;
};

/// Smallest L >= 1 with T^L = identity.
int orbit_length(const Transform& t, const GridDim& dim);

/// [identity, T, T^2, ..., T^{L-1}] as permutations.
std::vector<std::vector<int>> orbit_permutations(const Transform& t,
                                                 const GridDim& dim);

/// Composition: (a then b) as a permutation, out[i] = b[a[i]].
std::vector<int> compose_permutations(const std::vector<int>& a,
                                      const std::vector<int>& b);

/// Inverse permutation: out[a[i]] = i.
std::vector<int> invert_permutation(const std::vector<int>& a);

/// The identity permutation on n elements.
std::vector<int> identity_permutation(int n);

/// The five migration schemes of Figure 1, plus the static baseline.
enum class MigrationScheme {
  kNone,
  kRotation,
  kMirrorX,
  kMirrorXY,
  kShiftRight,
  kShiftXY,
};

const char* to_string(MigrationScheme scheme);

/// The Transform a scheme applies at each migration period (offset 1 for
/// the translations, as in the paper's right-shift).
Transform transform_of(MigrationScheme scheme);

/// Figure 1 order: Rot, X Mirror, X-Y Mirror, Right Shift, X-Y Shift.
std::vector<MigrationScheme> figure1_schemes();

}  // namespace renoc
