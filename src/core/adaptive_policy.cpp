#include "core/adaptive_policy.hpp"

#include <algorithm>
#include <limits>

#include "power/power_map.hpp"
#include "util/check.hpp"

namespace renoc {

const char* to_string(AdaptiveObjective objective) {
  switch (objective) {
    case AdaptiveObjective::kPredictivePeak: return "predictive-peak";
    case AdaptiveObjective::kCoolestHistory: return "coolest-history";
    case AdaptiveObjective::kOrbitAverage: return "orbit-average";
  }
  return "?";
}

AdaptivePolicy::AdaptivePolicy(const RcNetwork& net, const GridDim& dim,
                               AdaptiveObjective objective, double period_s,
                               int lookahead_steps)
    : net_(&net),
      dim_(dim),
      objective_(objective),
      lookahead_steps_(lookahead_steps) {
  RENOC_CHECK(net.die_count() == dim.node_count());
  RENOC_CHECK(period_s > 0 && lookahead_steps >= 1);
  lookahead_ = std::make_unique<TransientSolver>(
      net, period_s / lookahead_steps);
  steady_ = std::make_unique<SteadyStateSolver>(net);
  std::vector<Transform> defaults{Transform{TransformKind::kIdentity, 0}};
  for (MigrationScheme s : figure1_schemes())
    defaults.push_back(transform_of(s));
  set_candidates(std::move(defaults));
}

AdaptivePolicy::~AdaptivePolicy() = default;

void AdaptivePolicy::set_candidates(std::vector<Transform> candidates) {
  RENOC_CHECK_MSG(!candidates.empty(), "need at least one candidate");
  candidates_.clear();
  for (const Transform& t : candidates) {
    if (t.kind == TransformKind::kRotation && dim_.width != dim_.height)
      continue;  // rotation is not closed on non-square meshes
    candidates_.push_back(t);
  }
  RENOC_CHECK(!candidates_.empty());
}

double AdaptivePolicy::predicted_peak(
    const Transform& t, const std::vector<double>& current_power,
    const std::vector<double>& state_rise) {
  RENOC_CHECK(static_cast<int>(current_power.size()) == dim_.node_count());
  RENOC_CHECK(static_cast<int>(state_rise.size()) == net_->node_count());
  const std::vector<double> moved =
      apply_permutation(current_power, t.permutation(dim_));
  lookahead_->set_state(state_rise);
  // Evaluate the *end-of-period* peak, not the maximum over the window:
  // the window maximum is dominated by the shared initial condition (the
  // die time constant dwarfs one period), which would make every
  // candidate look identical. The end state is where candidates diverge —
  // a moved hotspot has had a period to cool.
  const std::vector<double> full = net_->expand_die_power(moved);
  for (int s = 0; s < lookahead_steps_; ++s) lookahead_->step(full);
  return net_->ambient() + net_->peak_die_rise(lookahead_->state());
}

double AdaptivePolicy::history_score(
    const Transform& t, const std::vector<double>& current_power,
    const std::vector<double>& state_rise) const {
  // Sensor heuristic: penalize placing high-power workloads onto tiles
  // that are currently hot. Score = sum_i P_moved[i] * T_i; lower is
  // better (hot tiles get cool workloads and vice versa). Identity gets a
  // small hysteresis bonus so negligible gains do not trigger pointless
  // migrations.
  const std::vector<double> moved =
      apply_permutation(current_power, t.permutation(dim_));
  double score = 0.0;
  for (int i = 0; i < net_->die_count(); ++i)
    score += moved[static_cast<std::size_t>(i)] *
             (net_->ambient() + state_rise[static_cast<std::size_t>(i)]);
  if (t.kind == TransformKind::kIdentity) score *= 0.999;
  return score;
}

double AdaptivePolicy::orbit_average_score(
    const Transform& t, const std::vector<double>& current_power) const {
  const auto orbit = orbit_permutations(t, dim_);
  std::vector<std::vector<double>> maps;
  maps.reserve(orbit.size());
  for (const auto& perm : orbit)
    maps.push_back(apply_permutation(current_power, perm));
  return steady_->peak_die_temperature(average_maps(maps));
}

Transform AdaptivePolicy::choose(const std::vector<double>& current_power,
                                 const std::vector<double>& state_rise) {
  RENOC_CHECK(static_cast<int>(current_power.size()) == dim_.node_count());
  RENOC_CHECK(static_cast<int>(state_rise.size()) == net_->node_count());
  const Transform* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  for (const Transform& t : candidates_) {
    double score = 0.0;
    switch (objective_) {
      case AdaptiveObjective::kPredictivePeak:
        score = predicted_peak(t, current_power, state_rise);
        break;
      case AdaptiveObjective::kCoolestHistory:
        score = history_score(t, current_power, state_rise);
        break;
      case AdaptiveObjective::kOrbitAverage:
        score = orbit_average_score(t, current_power);
        break;
    }
    if (score < best_score) {
      best_score = score;
      best = &t;
    }
  }
  RENOC_CHECK(best != nullptr);
  return *best;
}

}  // namespace renoc
