#include "core/adaptive_policy.hpp"

#include <algorithm>
#include <limits>

#include "power/power_map.hpp"
#include "util/check.hpp"

namespace renoc {

const char* to_string(AdaptiveObjective objective) {
  switch (objective) {
    case AdaptiveObjective::kPredictivePeak: return "predictive-peak";
    case AdaptiveObjective::kCoolestHistory: return "coolest-history";
    case AdaptiveObjective::kOrbitAverage: return "orbit-average";
  }
  return "?";
}

AdaptivePolicy::AdaptivePolicy(const RcNetwork& net, const GridDim& dim,
                               AdaptiveObjective objective, double period_s,
                               int lookahead_steps)
    : net_(&net),
      dim_(dim),
      objective_(objective),
      lookahead_steps_(lookahead_steps) {
  RENOC_CHECK(net.die_count() == dim.node_count());
  RENOC_CHECK(period_s > 0 && lookahead_steps >= 1);
  lookahead_ = std::make_unique<TransientSolver>(
      net, period_s / lookahead_steps);
  steady_ = std::make_unique<SteadyStateSolver>(net);
  std::vector<Transform> defaults{Transform{TransformKind::kIdentity, 0}};
  for (MigrationScheme s : figure1_schemes())
    defaults.push_back(transform_of(s));
  set_candidates(std::move(defaults));
}

AdaptivePolicy::~AdaptivePolicy() = default;

void AdaptivePolicy::set_candidates(std::vector<Transform> candidates) {
  RENOC_CHECK_MSG(!candidates.empty(), "need at least one candidate");
  candidates_.clear();
  candidate_perms_.clear();
  for (const Transform& t : candidates) {
    if (t.kind == TransformKind::kRotation && dim_.width != dim_.height)
      continue;  // rotation is not closed on non-square meshes
    candidates_.push_back(t);
    candidate_perms_.push_back(t.permutation(dim_));
  }
  RENOC_CHECK(!candidates_.empty());
}

double AdaptivePolicy::predicted_peak(
    const Transform& t, const std::vector<double>& current_power,
    const std::vector<double>& state_rise) {
  RENOC_CHECK(static_cast<int>(current_power.size()) == dim_.node_count());
  RENOC_CHECK(static_cast<int>(state_rise.size()) == net_->node_count());
  const std::vector<double> moved =
      apply_permutation(current_power, t.permutation(dim_));
  lookahead_->set_state(state_rise);
  // Evaluate the *end-of-period* peak, not the maximum over the window:
  // the window maximum is dominated by the shared initial condition (the
  // die time constant dwarfs one period), which would make every
  // candidate look identical. The end state is where candidates diverge —
  // a moved hotspot has had a period to cool.
  const std::vector<double> full = net_->expand_die_power(moved);
  for (int s = 0; s < lookahead_steps_; ++s) lookahead_->step(full);
  return net_->ambient() + net_->peak_die_rise(lookahead_->state());
}

double AdaptivePolicy::history_score(
    const std::vector<int>& perm, const Transform& t,
    const std::vector<double>& current_power,
    const std::vector<double>& state_rise) {
  // Sensor heuristic: penalize placing high-power workloads onto tiles
  // that are currently hot. Score = sum_i P_moved[i] * T_i; lower is
  // better (hot tiles get cool workloads and vice versa). Identity gets a
  // small hysteresis bonus so negligible gains do not trigger pointless
  // migrations.
  apply_permutation_into(current_power, perm, moved_);
  double score = 0.0;
  for (int i = 0; i < net_->die_count(); ++i)
    score += moved_[static_cast<std::size_t>(i)] *
             (net_->ambient() + state_rise[static_cast<std::size_t>(i)]);
  if (t.kind == TransformKind::kIdentity) score *= 0.999;
  return score;
}

double AdaptivePolicy::orbit_average_score(
    const Transform& t, const std::vector<double>& current_power) const {
  const auto orbit = orbit_permutations(t, dim_);
  std::vector<std::vector<double>> maps;
  maps.reserve(orbit.size());
  for (const auto& perm : orbit)
    maps.push_back(apply_permutation(current_power, perm));
  return steady_->peak_die_temperature(average_maps(maps));
}

void AdaptivePolicy::predictive_scores_batch(
    const std::vector<double>& current_power,
    const std::vector<double>& state_rise, std::vector<double>& scores) {
  // All candidates' lookahead trajectories advance together as one
  // row-major n x k block: every backward-Euler step performs a single
  // factor traversal (TransientSolver::step_multi) instead of k
  // independent integrations. The blocked kernels replicate the scalar
  // arithmetic per column, so scores[j] bit-matches
  // predicted_peak(candidates()[j], ...).
  const int k = static_cast<int>(candidates_.size());
  const auto uk = static_cast<std::size_t>(k);
  const std::size_t n = static_cast<std::size_t>(net_->node_count());
  const std::size_t die = static_cast<std::size_t>(net_->die_count());

  power_block_.assign(n * uk, 0.0);
  state_block_.resize(n * uk);
  for (std::size_t j = 0; j < uk; ++j) {
    apply_permutation_into(current_power, candidate_perms_[j], moved_);
    for (std::size_t i = 0; i < die; ++i)
      power_block_[i * uk + j] = moved_[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double s = state_rise[i];
    double* row = &state_block_[i * uk];
    for (std::size_t j = 0; j < uk; ++j) row[j] = s;
  }
  for (int s = 0; s < lookahead_steps_; ++s)
    lookahead_->step_multi(power_block_, state_block_, k);

  scores.resize(uk);
  for (std::size_t j = 0; j < uk; ++j) {
    // Column-j peak over die nodes, matching peak_die_rise's first-entry
    // seed followed by max over the remaining die nodes.
    double peak = state_block_[j];
    for (std::size_t i = 1; i < die; ++i)
      peak = std::max(peak, state_block_[i * uk + j]);
    scores[j] = net_->ambient() + peak;
  }
}

std::vector<double> AdaptivePolicy::candidate_scores(
    const std::vector<double>& current_power,
    const std::vector<double>& state_rise) {
  RENOC_CHECK(static_cast<int>(current_power.size()) == dim_.node_count());
  RENOC_CHECK(static_cast<int>(state_rise.size()) == net_->node_count());
  std::vector<double> scores;
  switch (objective_) {
    case AdaptiveObjective::kPredictivePeak:
      predictive_scores_batch(current_power, state_rise, scores);
      break;
    case AdaptiveObjective::kCoolestHistory:
      scores.reserve(candidates_.size());
      for (std::size_t j = 0; j < candidates_.size(); ++j)
        scores.push_back(history_score(candidate_perms_[j], candidates_[j],
                                       current_power, state_rise));
      break;
    case AdaptiveObjective::kOrbitAverage:
      scores.reserve(candidates_.size());
      for (const Transform& t : candidates_)
        scores.push_back(orbit_average_score(t, current_power));
      break;
  }
  return scores;
}

Transform AdaptivePolicy::choose(const std::vector<double>& current_power,
                                 const std::vector<double>& state_rise) {
  const std::vector<double> scores =
      candidate_scores(current_power, state_rise);
  const Transform* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < candidates_.size(); ++j) {
    if (scores[j] < best_score) {
      best_score = scores[j];
      best = &candidates_[j];
    }
  }
  RENOC_CHECK(best != nullptr);
  return *best;
}

AdaptiveSimResult run_adaptive_simulation(
    const RcNetwork& net, const GridDim& dim, AdaptivePolicy& policy,
    const std::vector<double>& base_power,
    const std::map<TransformKind, std::vector<double>>& energy_maps,
    const AdaptiveSimConfig& cfg) {
  RENOC_CHECK(cfg.period_s > 0);
  RENOC_CHECK(cfg.periods >= 5 && cfg.steps_per_period >= 1);
  RENOC_CHECK(net.die_count() == dim.node_count());

  TransientSolver transient(net,
                            cfg.period_s / cfg.steps_per_period);
  transient.set_state_to_steady(base_power);

  std::vector<int> accumulated = identity_permutation(dim.node_count());
  AdaptiveSimResult result;
  double settled_peak = 0.0;

  for (int p = 0; p < cfg.periods; ++p) {
    // Physical power map of the current placement.
    const std::vector<double> power =
        apply_permutation(base_power, accumulated);

    const Transform chosen = policy.choose(power, transient.state());
    ++result.choices[chosen.kind];
    if (chosen.kind != TransformKind::kIdentity) ++result.migrations;
    accumulated = compose_permutations(accumulated, chosen.permutation(dim));
    const std::vector<double> new_power =
        apply_permutation(base_power, accumulated);

    // Integrate the period; deposit the migration energy in the first
    // step (identity choices cost nothing).
    double period_peak = 0.0;
    for (int s = 0; s < cfg.steps_per_period; ++s) {
      if (s == 0 && chosen.kind != TransformKind::kIdentity) {
        auto it = energy_maps.find(chosen.kind);
        RENOC_CHECK_MSG(it != energy_maps.end(),
                        "no migration-energy map for chosen transform");
        std::vector<double> spiked = new_power;
        for (std::size_t i = 0; i < spiked.size(); ++i)
          spiked[i] += it->second[i] / transient.dt();
        transient.step_die_power(spiked);
      } else {
        transient.step_die_power(new_power);
      }
      period_peak = std::max(
          period_peak, net.ambient() + net.peak_die_rise(transient.state()));
    }
    // The start state is the *static* steady state, whose hot-tile excess
    // needs several die time constants (~30-40 periods) to decay; settle
    // over the last fifth.
    if (p >= cfg.periods - cfg.periods / 5)
      settled_peak = std::max(settled_peak, period_peak);
  }
  result.settled_peak_c = settled_peak;
  return result;
}

}  // namespace renoc
