#include "core/reference_runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "power/power_map.hpp"
#include "util/check.hpp"

namespace renoc {

ReferenceThermalRuntime::ReferenceThermalRuntime(const RcNetwork& net,
                                                 ThermalRunOptions options)
    : net_(&net), options_(options) {
  options_.validate();
}

int ReferenceThermalRuntime::steps_per_period() const {
  return std::max(
      1, static_cast<int>(std::ceil(options_.period_s / options_.dt_s)));
}

ThermalRunResult ReferenceThermalRuntime::run(
    const std::vector<double>& base_power,
    const std::vector<std::vector<int>>& orbit,
    const std::vector<std::vector<double>>& migration_energy) const {
  const RcNetwork& net = *net_;
  RENOC_CHECK(static_cast<int>(base_power.size()) == net.die_count());
  RENOC_CHECK(!orbit.empty());
  const std::size_t L = orbit.size();
  RENOC_CHECK_MSG(migration_energy.empty() || migration_energy.size() == L,
                  "need one migration-energy map per orbit step");

  // Per-segment power maps.
  std::vector<std::vector<double>> segment_power;
  segment_power.reserve(L);
  for (const auto& perm : orbit)
    segment_power.push_back(apply_permutation(base_power, perm));

  // Orbit-averaged map including amortized migration energy.
  std::vector<double> avg = average_maps(segment_power);
  if (!migration_energy.empty()) {
    for (const auto& e_map : migration_energy) {
      RENOC_CHECK(e_map.size() == base_power.size());
      for (std::size_t i = 0; i < avg.size(); ++i)
        avg[i] += e_map[i] / (options_.period_s * static_cast<double>(L));
    }
  }

  if (!steady_) steady_ = std::make_unique<SteadyStateSolver>(net);
  const std::vector<double> steady_rise = steady_->solve_die_power(avg);

  ThermalRunResult result;
  result.steady_peak_of_avg_c =
      net.ambient() + net.peak_die_rise(steady_rise);

  // Static case: a single identity segment with no migration energy is in
  // steady state already.
  const bool is_static = (L == 1) && migration_energy.empty();
  if (is_static) {
    const std::vector<double> rise =
        steady_->solve_die_power(segment_power[0]);
    result.peak_temp_c = net.ambient() + net.peak_die_rise(rise);
    result.mean_temp_c = net.ambient() + net.mean_die_rise(rise);
    result.ripple_c = 0.0;
    result.orbits_run = 0;
    result.converged = true;
    return result;
  }

  // Snap dt so an integer number of steps covers one period. Both the step
  // count and dt are fixed by options_, so the factorization is reused
  // across run() calls; only the state is re-seeded.
  const int steps = steps_per_period();
  const double dt = options_.period_s / steps;
  if (!transient_) transient_ = std::make_unique<TransientSolver>(net, dt);
  TransientSolver& transient = *transient_;
  transient.set_state(steady_rise);

  // Pre-expand each segment's die power to a full-node vector once, and
  // pre-fold the migration spike (energy / dt extra watts for the first
  // step of the segment) into its own full vector — the hot loop below
  // then never allocates or re-expands.
  std::vector<std::vector<double>> segment_full(L);
  std::vector<std::vector<double>> spiked_full;
  if (!migration_energy.empty())
    spiked_full.resize(L);
  for (std::size_t seg = 0; seg < L; ++seg) {
    segment_full[seg] = net.expand_die_power(segment_power[seg]);
    if (!migration_energy.empty()) {
      const auto& e_map = migration_energy[seg];
      spiked_full[seg] = segment_full[seg];
      for (std::size_t i = 0; i < e_map.size(); ++i)
        spiked_full[seg][i] += e_map[i] / dt;
    }
  }

  double prev_orbit_peak = result.steady_peak_of_avg_c;
  double mean_accum = 0.0;
  std::uint64_t mean_samples = 0;

  for (int orbit_idx = 0; orbit_idx < options_.max_orbits; ++orbit_idx) {
    double orbit_peak = -1e300;
    double peak_node_min = 1e300;  // min over time of the instantaneous peak
    for (std::size_t seg = 0; seg < L; ++seg) {
      for (int step = 0; step < steps; ++step) {
        const bool spike = step == 0 && !spiked_full.empty();
        transient.step(spike ? spiked_full[seg] : segment_full[seg]);
        const double peak_rise = net.peak_die_rise(transient.state());
        orbit_peak = std::max(orbit_peak, net.ambient() + peak_rise);
        peak_node_min =
            std::min(peak_node_min, net.ambient() + peak_rise);
        mean_accum += net.ambient() + net.mean_die_rise(transient.state());
        ++mean_samples;
      }
    }
    result.orbits_run = orbit_idx + 1;
    result.peak_temp_c = orbit_peak;
    result.ripple_c = orbit_peak - peak_node_min;
    if (orbit_idx + 1 >= options_.min_orbits &&
        std::fabs(orbit_peak - prev_orbit_peak) < options_.tol_c) {
      result.converged = true;
      break;
    }
    prev_orbit_peak = orbit_peak;
  }
  result.mean_temp_c =
      mean_samples ? mean_accum / static_cast<double>(mean_samples) : 0.0;
  return result;
}

}  // namespace renoc
