// Multithreaded thermal co-simulation scenario sweep.
//
// Scheme-study characterization over a grid of {migration scheme, period,
// power scale, grid refinement} scenarios, spread over std::thread
// workers. Mirrors the determinism design of ldpc/ber_harness and
// noc/sweep_harness:
//
//   - every scenario gets its own RNG stream (used for the per-tile power
//     jitter that diversifies the workload maps), derived statelessly
//     from (config seed, scenario index) by a SplitMix64 chain — never
//     from the worker that happens to run it;
//   - workers pull scenario indices from a shared atomic cursor and each
//     scenario is co-simulated end to end by exactly one worker, writing
//     its ExperimentSweepPoint into a preassigned slot;
//   - no cross-scenario state exists (each scenario owns its refined RC
//     network, factorizations, and runtime), so the result vector is
//     bit-identical for any thread count, and any single cell can be
//     replayed in isolation with run_experiment_scenario() in O(1) —
//     without re-simulating the grid before it.
//
// Methodology per scenario: build the jittered, scaled per-tile power
// map, refine the thermal grid, lift the scheme's orbit to the fine grid,
// run the migrating co-simulation (core/thermal_runtime engine) plus the
// static baseline, and report peak/mean/ripple and the peak reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "core/thermal_runtime.hpp"
#include "core/transform.hpp"
#include "floorplan/floorplan.hpp"
#include "floorplan/grid.hpp"
#include "thermal/hotspot_params.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"

namespace renoc {

/// One cell of the sweep grid.
struct ExperimentScenario {
  MigrationScheme scheme = MigrationScheme::kNone;
  double period_s = 109.3e-6;
  double power_scale = 1.0;
  int refine = 1;
};

struct ExperimentSweepConfig {
  GridDim dim{4, 4};                    ///< PE tile grid
  double tile_area = date05_tile_area();
  HotSpotParams hotspot = date05_hotspot_params();

  std::vector<MigrationScheme> schemes = figure1_schemes();
  std::vector<double> periods_s = {109.3e-6};
  std::vector<double> power_scales = {1.0};
  std::vector<int> refines = {1};       ///< thermal sub-blocks per tile side

  /// Per-tile watts of the workload. Empty = synthetic uniform map at
  /// `synthetic_tile_power_w`; a driver-measured map (e.g.
  /// ExperimentDriver::base_power) plugs in real workloads.
  std::vector<double> base_tile_power;
  double synthetic_tile_power_w = 2.0;
  /// Relative per-tile power jitter in [0, 1): each scenario draws factor
  /// 1 + jitter * U(-1, 1) per tile from its own RNG stream. Zero =
  /// deterministic maps (no RNG draws).
  double power_jitter = 0.25;
  /// Joules deposited per migration, spread uniformly over the die (zero
  /// = free migrations). Applied to every non-static scheme.
  double migration_energy_j = 0.0;

  ThermalRunOptions thermal{};  ///< period_s is overridden per scenario
  int threads = 1;              ///< worker thread count (>= 1)
  std::uint64_t seed = 1;       ///< master seed for all scenario streams

  void validate() const;

  /// The scenario grid in its fixed enumeration order (scheme-major, then
  /// period, power scale, refinement). Index i here is the scenario index
  /// fed to experiment_scenario_rng.
  std::vector<ExperimentScenario> scenarios() const;
};

/// Measured results for one scenario.
struct ExperimentSweepPoint {
  ExperimentScenario scenario;
  int scenario_index = 0;

  int orbit_length = 0;
  int fine_nodes = 0;          ///< die nodes of the refined network

  double static_peak_c = 0.0;  ///< steady peak of the scenario's map
  double peak_temp_c = 0.0;    ///< migrating co-simulation peak
  double reduction_c = 0.0;    ///< static_peak_c - peak_temp_c
  double mean_temp_c = 0.0;
  double ripple_c = 0.0;
  double steady_peak_of_avg_c = 0.0;
  int orbits_run = 0;
  bool converged = false;
};

/// Runs the sweep; returns one ExperimentSweepPoint per scenario in
/// scenarios() order, independent of cfg.threads.
std::vector<ExperimentSweepPoint> run_experiment_sweep(
    const ExperimentSweepConfig& cfg);

/// The RNG stream scenario `scenario_index` uses — exposed so tests and
/// examples can replay the exact maps a sweep measured. O(1): the stream
/// seed is a stateless mix of the two coordinates.
Rng experiment_scenario_rng(std::uint64_t seed, int scenario_index);

/// The jittered, scaled per-tile power map scenario `scenario_index`
/// draws (replay helper; consumes the same stream the sweep does).
std::vector<double> experiment_scenario_power(
    const ExperimentSweepConfig& cfg, const ExperimentScenario& scenario,
    int scenario_index);

/// Co-simulates one scenario exactly as the sweep would (same RNG stream,
/// same refined network and orbit). run_experiment_sweep(cfg)[i] ==
/// run_experiment_scenario(cfg.scenarios()[i], cfg, i) for every i.
ExperimentSweepPoint run_experiment_scenario(
    const ExperimentScenario& scenario, const ExperimentSweepConfig& cfg,
    int scenario_index);

/// Sweep-service spec for the same sweep: one scenario per grid cell in
/// scenarios() order, 10-word records (counts raw, temperatures as
/// pack_double bit patterns). Results are bit-identical to
/// run_experiment_sweep's for any shard split or resume schedule. `cfg`
/// must outlive the spec.
sweep::SweepSpec make_experiment_sweep_spec(const ExperimentSweepConfig& cfg);

/// Decodes a kCompleted service record back into the ExperimentSweepPoint
/// run_experiment_sweep would have produced for that scenario.
ExperimentSweepPoint experiment_point_from_record(
    const ExperimentScenario& scenario, const sweep::ScenarioRecord& rec);

}  // namespace renoc
