// Seed semantics oracle for the migration thermal co-simulation.
//
// This is the scalar per-step orbit integration exactly as it stood before
// the streamed co-sim engine landed in core/thermal_runtime: per-run
// vector construction, TransientSolver::step per time step, and separate
// peak/mean scans through the RcNetwork helpers. It is kept verbatim —
// like ldpc/reference_decoder and noc/reference_fabric — as the semantics
// oracle the engine must agree with (<= 1e-10 on every ThermalRunResult
// field, exact on the integer/bool fields), and as the baseline
// bench/micro_runtime times the engine against.
//
// Do not optimize this file; that is the engine's job.
#pragma once

#include <memory>
#include <vector>

#include "core/thermal_runtime.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"

namespace renoc {

/// The pre-engine MigrationThermalRuntime. Same inputs, options, and
/// result contract as MigrationThermalRuntime::run.
class ReferenceThermalRuntime {
 public:
  ReferenceThermalRuntime(const RcNetwork& net, ThermalRunOptions options);

  ThermalRunResult run(
      const std::vector<double>& base_power,
      const std::vector<std::vector<int>>& orbit,
      const std::vector<std::vector<double>>& migration_energy) const;

  const RcNetwork& network() const { return *net_; }

 private:
  int steps_per_period() const;

  const RcNetwork* net_;
  ThermalRunOptions options_;
  mutable std::unique_ptr<SteadyStateSolver> steady_;
  mutable std::unique_ptr<TransientSolver> transient_;
};

}  // namespace renoc
