// The five chip configurations of the DATE'05 evaluation.
//
// "the 4x4 chip is evaluated with two different configurations (referred
// to as A and B), while the 5x5 chip is evaluated with three different
// configurations (C, D, E). Differences in thermal profiles and power
// consumption between the configurations are due to the irregularity of
// the communication patterns and the amount of computation mapped to a
// single PE."
//
// The test chips implement the ISVLSI'05 NoC LDPC decoder, whose
// row-pipelined architecture dedicates a row of PEs to check-node
// processing (CFUs) while the remaining tiles hold bit/variable-node
// clusters (BFUs). We model the configurations accordingly:
//
//   * the CFU row is architecturally fixed (pinned in the placement) and
//     concentrates the check-side work -> "one of the rows had a
//     significantly higher power output than the remaining rows";
//   * per-cluster weights vary the computation mapped to each PE;
//   * hybrid BFU+CFU tiles (configurations A, B) and a heavy central
//     cluster (configuration E) realize the "irregular communication
//     patterns" that distinguish the five chips;
//   * the thermally-aware placer assigns the movable clusters.
//
// On the 5x5 chips the (communication-optimal) CFU row is the middle row
// and therefore passes through the central PE — the fixed point of
// rotation and mirroring — which is exactly why the paper finds
// translation more effective on the odd-dimension configurations.
//
// Each configuration's absolute power is calibrated at runtime so its
// baseline peak temperature equals the paper's reported value (A=85.44,
// B=84.05, C=75.17, D=72.80, E=75.98 C); the scale factors are reported by
// the benches and recorded in EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "ldpc/code.hpp"
#include "ldpc/noc_decoder.hpp"
#include "ldpc/partition.hpp"
#include "mapping/placer.hpp"
#include "noc/fabric.hpp"
#include "power/energy_model.hpp"
#include "thermal/hotspot_params.hpp"

namespace renoc {

/// The LDPC workload shape of one configuration.
struct WorkloadSpec {
  int code_n = 2046;
  int wc = 3;
  int wr = 6;
  /// Per-cluster shares of variable/check nodes (zero = none; a pure CFU
  /// tile has vn weight 0, a pure BFU tile has cn weight 0).
  std::vector<double> vn_weights;
  std::vector<double> cn_weights;
  /// Architecturally fixed assignments (the CFU row, hybrid tiles).
  std::vector<ThermalAwarePlacer::Pin> pins;
  std::uint64_t code_seed = 1;
};

struct ChipConfig {
  std::string name;
  GridDim dim{4, 4};
  NocConfig noc;
  WorkloadSpec workload;
  LdpcNocParams ldpc_params;
  EnergyParams energy;
  HotSpotParams hotspot;
  PlacerOptions placer;
  double paper_base_peak_c = 0.0;  ///< calibration target from the paper
  double ebn0_db = 2.5;
  std::uint64_t channel_seed = 99;
};

/// The five configurations (paper Section 2 / Figure 1).
ChipConfig config_A();
ChipConfig config_B();
ChipConfig config_C();
ChipConfig config_D();
ChipConfig config_E();
std::vector<ChipConfig> all_configs();
ChipConfig config_by_name(const std::string& name);

/// Everything derived from a ChipConfig that experiments need.
struct BuiltChip {
  ChipConfig config;
  LdpcCode code;
  Partition partition;
  Floorplan floorplan;
  std::vector<std::uint64_t> cluster_ops;  ///< edge ops per iteration
  std::vector<std::vector<std::uint64_t>> traffic;  ///< values per iteration
  std::vector<double> compute_power_estimate;  ///< W per cluster (model)
  std::vector<std::int16_t> channel_llrs;      ///< one encoded+noisy block
};

/// Constructs code, partition, floorplan, traffic/work summaries, and one
/// transmitted block for the configuration.
BuiltChip build_chip(const ChipConfig& cfg);

}  // namespace renoc
