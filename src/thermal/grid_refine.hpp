// Grid-refined thermal model: the block-vs-grid ablation.
//
// HotSpot offers both a block-level model (one node per floorplan unit —
// what the paper's experiments use) and a finer grid model. To show the
// reproduction's conclusions are not artifacts of the coarse resolution,
// this module rebuilds the RC network with every PE tile subdivided into
// refine x refine sub-blocks (the package layers scale automatically
// because they are derived from the floorplan). Tile power spreads
// uniformly over a tile's sub-blocks; temperatures are read back per tile
// as the max over its sub-blocks.
//
// bench/grid_resolution sweeps the refinement factor and reruns the
// Figure-1 comparison at refine=2 to confirm the scheme ordering holds.
#pragma once

#include <memory>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"

namespace renoc {

class RefinedThermalModel {
 public:
  /// Subdivides each tile of a `tile_dim` PE grid (each tile_area m^2)
  /// into refine x refine sub-blocks and builds the RC network over the
  /// fine floorplan. refine == 1 reproduces the block model exactly.
  RefinedThermalModel(const GridDim& tile_dim, double tile_area,
                      const HotSpotParams& params, int refine);

  int refine() const { return refine_; }
  const GridDim& tile_dim() const { return tile_dim_; }
  const GridDim& fine_dim() const { return fine_dim_; }
  const RcNetwork& network() const { return net_; }

  /// Spreads per-tile watts uniformly over each tile's sub-blocks.
  std::vector<double> refine_power(
      const std::vector<double>& tile_power) const;

  /// Per-tile temperature: max over the tile's sub-blocks of a full-node
  /// rise vector, plus ambient.
  std::vector<double> tile_temperatures(
      const std::vector<double>& rise) const;

  /// Peak die temperature for a per-tile power map (steady state). Reuses
  /// the cached steady_solver(), so repeated queries pay one factorization.
  double peak_tile_temperature(const std::vector<double>& tile_power) const;

  /// Steady-state solver over the refined network, built on first use and
  /// cached for the lifetime of the model (not thread-safe, like the rest
  /// of the library).
  const SteadyStateSolver& steady_solver() const;

  /// Sub-block indices belonging to a tile (row-major within the fine
  /// grid; exposed for tests).
  std::vector<int> subblocks_of_tile(int tile) const;

 private:
  /// Validates the refinement factor; called from the member-init list
  /// before anything divides by or sizes with it.
  static int checked_refine(int refine);

  GridDim tile_dim_;
  GridDim fine_dim_;
  int refine_;
  RcNetwork net_;
  mutable std::unique_ptr<SteadyStateSolver> solver_;  // lazy cache
};

}  // namespace renoc
