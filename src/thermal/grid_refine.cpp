#include "thermal/grid_refine.hpp"

#include <algorithm>

#include "thermal/solver.hpp"
#include "util/check.hpp"

namespace renoc {

RefinedThermalModel::RefinedThermalModel(const GridDim& tile_dim,
                                         double tile_area,
                                         const HotSpotParams& params,
                                         int refine)
    : tile_dim_(tile_dim),
      fine_dim_{tile_dim.width * refine, tile_dim.height * refine},
      refine_(refine),
      net_(build_rc_network(
          make_grid_floorplan(fine_dim_,
                              tile_area / (static_cast<double>(refine) *
                                           refine)),
          params)) {
  RENOC_CHECK_MSG(refine >= 1 && refine <= 8,
                  "refine factor " << refine << " out of supported range");
}

std::vector<int> RefinedThermalModel::subblocks_of_tile(int tile) const {
  RENOC_CHECK(tile >= 0 && tile < tile_dim_.node_count());
  const GridCoord tc = index_to_coord(tile, tile_dim_);
  std::vector<int> blocks;
  blocks.reserve(static_cast<std::size_t>(refine_ * refine_));
  for (int dy = 0; dy < refine_; ++dy) {
    for (int dx = 0; dx < refine_; ++dx) {
      const GridCoord fc{tc.x * refine_ + dx, tc.y * refine_ + dy};
      blocks.push_back(coord_to_index(fc, fine_dim_));
    }
  }
  return blocks;
}

std::vector<double> RefinedThermalModel::refine_power(
    const std::vector<double>& tile_power) const {
  RENOC_CHECK(static_cast<int>(tile_power.size()) == tile_dim_.node_count());
  std::vector<double> fine(
      static_cast<std::size_t>(fine_dim_.node_count()), 0.0);
  const double share = 1.0 / (static_cast<double>(refine_) * refine_);
  for (int tile = 0; tile < tile_dim_.node_count(); ++tile) {
    const double p = tile_power[static_cast<std::size_t>(tile)] * share;
    for (int b : subblocks_of_tile(tile))
      fine[static_cast<std::size_t>(b)] = p;
  }
  return fine;
}

std::vector<double> RefinedThermalModel::tile_temperatures(
    const std::vector<double>& rise) const {
  RENOC_CHECK(static_cast<int>(rise.size()) == net_.node_count());
  std::vector<double> temps(
      static_cast<std::size_t>(tile_dim_.node_count()));
  for (int tile = 0; tile < tile_dim_.node_count(); ++tile) {
    double peak = -1e300;
    for (int b : subblocks_of_tile(tile))
      peak = std::max(peak, rise[static_cast<std::size_t>(b)]);
    temps[static_cast<std::size_t>(tile)] = net_.ambient() + peak;
  }
  return temps;
}

double RefinedThermalModel::peak_tile_temperature(
    const std::vector<double>& tile_power) const {
  SteadyStateSolver solver(net_);
  const std::vector<double> rise =
      solver.solve_die_power(refine_power(tile_power));
  return net_.ambient() + net_.peak_die_rise(rise);
}

}  // namespace renoc
