#include "thermal/grid_refine.hpp"

#include <algorithm>

#include "thermal/solver.hpp"
#include "util/check.hpp"

namespace renoc {

int RefinedThermalModel::checked_refine(int refine) {
  RENOC_CHECK_MSG(refine >= 1 && refine <= 8,
                  "refine factor " << refine << " out of supported range");
  return refine;
}

// checked_refine() must run before the first member that uses `refine`:
// members initialize in declaration order, so validating in the body (as an
// earlier version did) let refine=0 divide tile_area by zero and build a
// bogus 0x0 fine grid before the check ever executed.
RefinedThermalModel::RefinedThermalModel(const GridDim& tile_dim,
                                         double tile_area,
                                         const HotSpotParams& params,
                                         int refine)
    : tile_dim_(tile_dim),
      fine_dim_{tile_dim.width * checked_refine(refine),
                tile_dim.height * refine},
      refine_(refine),
      net_(build_rc_network(
          make_grid_floorplan(fine_dim_,
                              tile_area / (static_cast<double>(refine) *
                                           refine)),
          params)) {}

std::vector<int> RefinedThermalModel::subblocks_of_tile(int tile) const {
  RENOC_CHECK(tile >= 0 && tile < tile_dim_.node_count());
  const GridCoord tc = index_to_coord(tile, tile_dim_);
  std::vector<int> blocks;
  blocks.reserve(static_cast<std::size_t>(refine_ * refine_));
  for (int dy = 0; dy < refine_; ++dy) {
    for (int dx = 0; dx < refine_; ++dx) {
      const GridCoord fc{tc.x * refine_ + dx, tc.y * refine_ + dy};
      blocks.push_back(coord_to_index(fc, fine_dim_));
    }
  }
  return blocks;
}

std::vector<double> RefinedThermalModel::refine_power(
    const std::vector<double>& tile_power) const {
  RENOC_CHECK(static_cast<int>(tile_power.size()) == tile_dim_.node_count());
  std::vector<double> fine(
      static_cast<std::size_t>(fine_dim_.node_count()), 0.0);
  const double share = 1.0 / (static_cast<double>(refine_) * refine_);
  for (int tile = 0; tile < tile_dim_.node_count(); ++tile) {
    const double p = tile_power[static_cast<std::size_t>(tile)] * share;
    for (int b : subblocks_of_tile(tile))
      fine[static_cast<std::size_t>(b)] = p;
  }
  return fine;
}

std::vector<double> RefinedThermalModel::tile_temperatures(
    const std::vector<double>& rise) const {
  RENOC_CHECK(static_cast<int>(rise.size()) == net_.node_count());
  std::vector<double> temps(
      static_cast<std::size_t>(tile_dim_.node_count()));
  for (int tile = 0; tile < tile_dim_.node_count(); ++tile) {
    double peak = -1e300;
    for (int b : subblocks_of_tile(tile))
      peak = std::max(peak, rise[static_cast<std::size_t>(b)]);
    temps[static_cast<std::size_t>(tile)] = net_.ambient() + peak;
  }
  return temps;
}

const SteadyStateSolver& RefinedThermalModel::steady_solver() const {
  if (!solver_) solver_ = std::make_unique<SteadyStateSolver>(net_);
  return *solver_;
}

double RefinedThermalModel::peak_tile_temperature(
    const std::vector<double>& tile_power) const {
  const std::vector<double> rise =
      steady_solver().solve_die_power(refine_power(tile_power));
  return net_.ambient() + net_.peak_die_rise(rise);
}

}  // namespace renoc
