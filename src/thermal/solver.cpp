#include "thermal/solver.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace renoc {
namespace {

bool dense_forced_by_env() {
  const char* v = std::getenv("RENOC_DENSE_SOLVE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Copies die power into the leading entries of a full-node scratch vector
/// whose package tail is already zero (allocation-free expand_die_power).
const std::vector<double>& expand_into(const RcNetwork& net,
                                       const std::vector<double>& die_power,
                                       std::vector<double>& full) {
  RENOC_CHECK_MSG(static_cast<int>(die_power.size()) == net.die_count(),
                  "power vector size " << die_power.size()
                                      << " != die count " << net.die_count());
  full.resize(static_cast<std::size_t>(net.node_count()), 0.0);
  std::copy(die_power.begin(), die_power.end(), full.begin());
  return full;
}

}  // namespace

SolverBackend resolve_solver_backend(SolverBackend requested,
                                     int node_count) {
  if (requested != SolverBackend::kAuto) return requested;
  if (dense_forced_by_env()) return SolverBackend::kDense;
  return node_count < kDenseNodeCutoff ? SolverBackend::kDense
                                       : SolverBackend::kSparse;
}

std::vector<double> step_capacitance_diagonal(const RcNetwork& net,
                                              double dt) {
  RENOC_CHECK_MSG(dt > 0.0, "transient dt must be positive");
  std::vector<double> d(static_cast<std::size_t>(net.node_count()));
  for (int i = 0; i < net.node_count(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    d[u] = net.capacitance()[u] / dt;
  }
  return d;
}

Matrix dense_step_matrix(const RcNetwork& net,
                         const std::vector<double>& c_over_dt) {
  Matrix m = net.conductance();
  for (int i = 0; i < net.node_count(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    m(u, u) += c_over_dt[u];
  }
  return m;
}

SteadyStateSolver::SteadyStateSolver(const RcNetwork& net,
                                     SolverBackend backend)
    : net_(&net) {
  switch (resolve_solver_backend(backend, net.node_count())) {
    case SolverBackend::kSparse:
      ldlt_ = std::make_unique<SparseLdlt>(net.conductance_sparse());
      break;
    case SolverBackend::kDense:
    case SolverBackend::kAuto:
      lu_ = std::make_unique<LuFactorization>(net.conductance());
      break;
  }
}

std::vector<double> SteadyStateSolver::solve(
    const std::vector<double>& power) const {
  RENOC_CHECK(static_cast<int>(power.size()) == net_->node_count());
  return ldlt_ ? ldlt_->solve(power) : lu_->solve(power);
}

void SteadyStateSolver::solve_into(const std::vector<double>& power,
                                   std::vector<double>& rise) const {
  RENOC_CHECK(static_cast<int>(power.size()) == net_->node_count());
  rise.resize(power.size());
  std::copy(power.begin(), power.end(), rise.begin());
  if (ldlt_)
    ldlt_->solve_in_place(rise);
  else
    lu_->solve_in_place(rise);
}

std::vector<double> SteadyStateSolver::solve_die_power(
    const std::vector<double>& die_power) const {
  return solve(expand_into(*net_, die_power, full_power_));
}

void SteadyStateSolver::solve_die_power_into(
    const std::vector<double>& die_power, std::vector<double>& rise) const {
  RENOC_CHECK_MSG(&die_power != &rise,
                  "die power and rise buffers must be distinct");
  solve_into(expand_into(*net_, die_power, full_power_), rise);
}

double SteadyStateSolver::peak_die_temperature(
    const std::vector<double>& die_power) const {
  const std::vector<double> rise = solve_die_power(die_power);
  return net_->ambient() + net_->peak_die_rise(rise);
}

TransientSolver::TransientSolver(const RcNetwork& net, double dt,
                                 SolverBackend backend)
    : net_(&net),
      dt_(dt),
      c_over_dt_(step_capacitance_diagonal(net, dt)),
      state_(static_cast<std::size_t>(net.node_count()), 0.0),
      rhs_(static_cast<std::size_t>(net.node_count()), 0.0) {
  switch (resolve_solver_backend(backend, net.node_count())) {
    case SolverBackend::kSparse:
      step_ldlt_ = std::make_unique<SparseLdlt>(
          net.conductance_sparse().plus_diagonal(c_over_dt_));
      break;
    case SolverBackend::kDense:
    case SolverBackend::kAuto:
      step_lu_ = std::make_unique<LuFactorization>(
          dense_step_matrix(net, c_over_dt_));
      break;
  }
}

void TransientSolver::set_state(std::vector<double> rise) {
  RENOC_CHECK(static_cast<int>(rise.size()) == net_->node_count());
  state_ = std::move(rise);
}

void TransientSolver::set_state_to_steady(
    const std::vector<double>& die_power) {
  SteadyStateSolver steady(*net_);
  state_ = steady.solve_die_power(die_power);
}

void TransientSolver::step(const std::vector<double>& power) {
  RENOC_CHECK(static_cast<int>(power.size()) == net_->node_count());
  for (std::size_t i = 0; i < state_.size(); ++i)
    rhs_[i] = c_over_dt_[i] * state_[i] + power[i];
  if (step_ldlt_)
    step_ldlt_->solve_in_place(rhs_);
  else
    step_lu_->solve_in_place(rhs_);
  std::swap(state_, rhs_);
}

void TransientSolver::step_multi(const std::vector<double>& powers,
                                 std::vector<double>& states, int nrhs) {
  RENOC_CHECK_MSG(nrhs >= 1, "need at least one trajectory");
  const std::size_t expected =
      static_cast<std::size_t>(net_->node_count()) *
      static_cast<std::size_t>(nrhs);
  RENOC_CHECK_MSG(powers.size() == expected && states.size() == expected,
                  "step_multi blocks must be node_count x nrhs");
  const std::size_t w = static_cast<std::size_t>(nrhs);
  rhs_multi_.resize(expected);
  for (std::size_t i = 0; i < c_over_dt_.size(); ++i) {
    const double cd = c_over_dt_[i];
    const double* s = &states[i * w];
    const double* p = &powers[i * w];
    double* r = &rhs_multi_[i * w];
    for (std::size_t j = 0; j < w; ++j) r[j] = cd * s[j] + p[j];
  }
  if (step_ldlt_)
    step_ldlt_->solve_multi(rhs_multi_, nrhs);
  else
    step_lu_->solve_multi(rhs_multi_, nrhs);
  std::swap(states, rhs_multi_);
}

void TransientSolver::step_die_power(const std::vector<double>& die_power) {
  step(expand_into(*net_, die_power, full_power_));
}

double TransientSolver::run_die_power(const std::vector<double>& die_power,
                                      int steps) {
  RENOC_CHECK(steps >= 0);
  const std::vector<double>& full =
      expand_into(*net_, die_power, full_power_);
  double peak = net_->peak_die_rise(state_);
  for (int s = 0; s < steps; ++s) {
    step(full);
    peak = std::max(peak, net_->peak_die_rise(state_));
  }
  return peak;
}

}  // namespace renoc
