#include "thermal/solver.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace renoc {
namespace {

Matrix step_matrix(const RcNetwork& net, double dt) {
  RENOC_CHECK_MSG(dt > 0.0, "transient dt must be positive");
  Matrix m = net.conductance();
  for (int i = 0; i < net.node_count(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    m(u, u) += net.capacitance()[u] / dt;
  }
  return m;
}

}  // namespace

SteadyStateSolver::SteadyStateSolver(const RcNetwork& net)
    : net_(&net), lu_(net.conductance()) {}

std::vector<double> SteadyStateSolver::solve(
    const std::vector<double>& power) const {
  RENOC_CHECK(static_cast<int>(power.size()) == net_->node_count());
  return lu_.solve(power);
}

std::vector<double> SteadyStateSolver::solve_die_power(
    const std::vector<double>& die_power) const {
  return solve(net_->expand_die_power(die_power));
}

double SteadyStateSolver::peak_die_temperature(
    const std::vector<double>& die_power) const {
  const std::vector<double> rise = solve_die_power(die_power);
  return net_->ambient() + net_->peak_die_rise(rise);
}

TransientSolver::TransientSolver(const RcNetwork& net, double dt)
    : net_(&net),
      dt_(dt),
      step_lu_(step_matrix(net, dt)),
      c_over_dt_(static_cast<std::size_t>(net.node_count())),
      state_(static_cast<std::size_t>(net.node_count()), 0.0),
      rhs_(static_cast<std::size_t>(net.node_count()), 0.0) {
  for (int i = 0; i < net.node_count(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    c_over_dt_[u] = net.capacitance()[u] / dt;
  }
}

void TransientSolver::set_state(std::vector<double> rise) {
  RENOC_CHECK(static_cast<int>(rise.size()) == net_->node_count());
  state_ = std::move(rise);
}

void TransientSolver::set_state_to_steady(
    const std::vector<double>& die_power) {
  SteadyStateSolver steady(*net_);
  state_ = steady.solve_die_power(die_power);
}

void TransientSolver::step(const std::vector<double>& power) {
  RENOC_CHECK(static_cast<int>(power.size()) == net_->node_count());
  for (std::size_t i = 0; i < state_.size(); ++i)
    rhs_[i] = c_over_dt_[i] * state_[i] + power[i];
  step_lu_.solve_in_place(rhs_);
  std::swap(state_, rhs_);
}

void TransientSolver::step_die_power(const std::vector<double>& die_power) {
  step(net_->expand_die_power(die_power));
}

double TransientSolver::run_die_power(const std::vector<double>& die_power,
                                      int steps) {
  RENOC_CHECK(steps >= 0);
  const std::vector<double> full = net_->expand_die_power(die_power);
  double peak = net_->peak_die_rise(state_);
  for (int s = 0; s < steps; ++s) {
    step(full);
    peak = std::max(peak, net_->peak_die_rise(state_));
  }
  return peak;
}

}  // namespace renoc
