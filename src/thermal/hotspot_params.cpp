#include "thermal/hotspot_params.hpp"

#include "util/check.hpp"

namespace renoc {

void HotSpotParams::validate() const {
  RENOC_CHECK(t_die > 0 && k_die > 0 && c_die > 0);
  RENOC_CHECK(t_interface > 0 && k_interface > 0 && c_interface > 0);
  RENOC_CHECK(s_spreader > 0 && t_spreader > 0 && k_spreader > 0 &&
              c_spreader > 0);
  RENOC_CHECK(s_sink >= s_spreader && t_sink > 0 && k_sink > 0 && c_sink > 0);
  RENOC_CHECK(r_convec > 0 && c_convec > 0);
  RENOC_CHECK_MSG(ambient > -50 && ambient < 150,
                  "ambient " << ambient << " C is outside plausible range");
}

HotSpotParams date05_hotspot_params() {
  HotSpotParams p;  // defaults are already the HotSpot default package
  p.ambient = 40.0;
  return p;
}

}  // namespace renoc
