#include "thermal/rc_network.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace renoc {
namespace {

/// Adds a conductance g between nodes a and b (symmetric stamp: diagonal
/// += g, off-diagonal -= g). Duplicate stamps sum during CSR assembly.
void stamp(std::vector<Triplet>& trips, int a, int b, double g) {
  RENOC_CHECK(g > 0.0);
  trips.push_back({a, a, g});
  trips.push_back({b, b, g});
  trips.push_back({a, b, -g});
  trips.push_back({b, a, -g});
}

/// Vertical conduction resistance of a slab: t / (k * A).
double vertical_r(double thickness, double k, double area) {
  return thickness / (k * area);
}

}  // namespace

RcNetwork::RcNetwork(SparseMatrix g, std::vector<double> cap,
                     std::vector<std::string> names, int die_count,
                     double ambient)
    : g_(std::move(g)),
      cap_(std::move(cap)),
      names_(std::move(names)),
      die_count_(die_count),
      ambient_(ambient) {
  RENOC_CHECK(g_.rows() == g_.cols());
  RENOC_CHECK(g_.rows() == static_cast<int>(cap_.size()));
  RENOC_CHECK(names_.size() == cap_.size());
  RENOC_CHECK(die_count_ > 0 &&
              die_count_ <= static_cast<int>(cap_.size()));
  for (double c : cap_) RENOC_CHECK(c > 0.0);
}

const Matrix& RcNetwork::conductance() const {
  if (!dense_g_) dense_g_ = std::make_unique<Matrix>(g_.to_dense());
  return *dense_g_;
}

const std::string& RcNetwork::node_name(int i) const {
  RENOC_CHECK(i >= 0 && i < node_count());
  return names_[static_cast<std::size_t>(i)];
}

std::vector<double> RcNetwork::expand_die_power(
    const std::vector<double>& die_power) const {
  RENOC_CHECK_MSG(static_cast<int>(die_power.size()) == die_count_,
                  "power vector size " << die_power.size() << " != die count "
                                       << die_count_);
  std::vector<double> full(static_cast<std::size_t>(node_count()), 0.0);
  std::copy(die_power.begin(), die_power.end(), full.begin());
  return full;
}

double RcNetwork::peak_die_rise(const std::vector<double>& rise) const {
  RENOC_CHECK(static_cast<int>(rise.size()) == node_count());
  double peak = rise[0];
  for (int i = 1; i < die_count_; ++i)
    peak = std::max(peak, rise[static_cast<std::size_t>(i)]);
  return peak;
}

double RcNetwork::mean_die_rise(const std::vector<double>& rise) const {
  RENOC_CHECK(static_cast<int>(rise.size()) == node_count());
  double sum = 0.0;
  for (int i = 0; i < die_count_; ++i) sum += rise[static_cast<std::size_t>(i)];
  return sum / die_count_;
}

// Node layout for a floorplan with N blocks (see header): the spreader
// volume under the die is discretized per block so lateral position on the
// die matters (edge blocks reach the spreader periphery more easily than
// central ones, exactly as in HotSpot's finer models):
//
//   [0, N)        die blocks
//   [N, 2N)       TIM blocks
//   [2N, 3N)      spreader under-die nodes (one per block, laterally
//                 connected; boundary ones couple to the periphery)
//   [3N, 3N+4)    spreader periphery trapezoids (N/S/E/W)
//   3N+4          sink center (under the whole spreader)
//   [3N+5, 3N+9)  sink periphery trapezoids
//   3N+9          convection node (r_convec/c_convec to ambient)
RcNetwork build_rc_network(const Floorplan& fp, const HotSpotParams& p) {
  p.validate();
  const int n = fp.block_count();
  const double die_w = fp.die_width();
  const double die_h = fp.die_height();
  RENOC_CHECK_MSG(die_w <= p.s_spreader && die_h <= p.s_spreader,
                  "die " << die_w << "x" << die_h
                         << " m exceeds spreader side " << p.s_spreader);

  const int idx_tim0 = n;
  const int idx_sp0 = 2 * n;          // under-die spreader nodes
  const int idx_sp_per0 = 3 * n;      // N, S, E, W trapezoids
  const int idx_sink_center = 3 * n + 4;
  const int idx_sink_per0 = 3 * n + 5;  // N, S, E, W
  const int idx_convec = 3 * n + 9;
  const int total = 3 * n + 10;

  // ~7 stamps of 4 triplets per node; reserve once and assemble at the end.
  std::vector<Triplet> trips;
  trips.reserve(static_cast<std::size_t>(total) * 28);
  std::vector<double> cap(static_cast<std::size_t>(total), 0.0);
  std::vector<std::string> names(static_cast<std::size_t>(total));

  // --- Node names and capacitances -------------------------------------
  for (int i = 0; i < n; ++i) {
    const Block& b = fp.block(i);
    names[static_cast<std::size_t>(i)] = "die:" + b.name;
    names[static_cast<std::size_t>(idx_tim0 + i)] = "tim:" + b.name;
    names[static_cast<std::size_t>(idx_sp0 + i)] = "spreader:" + b.name;
    cap[static_cast<std::size_t>(i)] = p.c_die * b.area() * p.t_die;
    cap[static_cast<std::size_t>(idx_tim0 + i)] =
        p.c_interface * b.area() * p.t_interface;
    cap[static_cast<std::size_t>(idx_sp0 + i)] =
        p.c_spreader * b.area() * p.t_spreader;
  }

  const double a_die_fp = die_w * die_h;  // die footprint on the spreader
  const double a_sp_total = p.s_spreader * p.s_spreader;
  const double a_sp_per_each = (a_sp_total - a_die_fp) / 4.0;
  RENOC_CHECK(a_sp_per_each > 0.0);
  static const char* kDirs[4] = {"north", "south", "east", "west"};
  for (int d = 0; d < 4; ++d) {
    names[static_cast<std::size_t>(idx_sp_per0 + d)] =
        std::string("spreader:") + kDirs[d];
    cap[static_cast<std::size_t>(idx_sp_per0 + d)] =
        p.c_spreader * a_sp_per_each * p.t_spreader;
  }

  const double a_sink_total = p.s_sink * p.s_sink;
  const double a_sink_per_each = (a_sink_total - a_sp_total) / 4.0;
  RENOC_CHECK(a_sink_per_each > 0.0);
  names[static_cast<std::size_t>(idx_sink_center)] = "sink:center";
  cap[static_cast<std::size_t>(idx_sink_center)] =
      p.c_sink * a_sp_total * p.t_sink;
  for (int d = 0; d < 4; ++d) {
    names[static_cast<std::size_t>(idx_sink_per0 + d)] =
        std::string("sink:") + kDirs[d];
    cap[static_cast<std::size_t>(idx_sink_per0 + d)] =
        p.c_sink * a_sink_per_each * p.t_sink;
  }

  names[static_cast<std::size_t>(idx_convec)] = "convection";
  cap[static_cast<std::size_t>(idx_convec)] = p.c_convec;

  // --- Lateral conduction in die and in the under-die spreader ----------
  for (const Adjacency& adj : fp.adjacencies()) {
    const Block& a = fp.block(adj.a);
    const Block& b = fp.block(adj.b);
    // Heat travels from block center to the shared edge in each block.
    const double half_a = (adj.horizontal ? a.width : a.height) / 2.0;
    const double half_b = (adj.horizontal ? b.width : b.height) / 2.0;
    const double r_die =
        (half_a + half_b) / (p.k_die * p.t_die * adj.shared_len);
    stamp(trips, adj.a, adj.b, 1.0 / r_die);
    const double r_sp =
        (half_a + half_b) / (p.k_spreader * p.t_spreader * adj.shared_len);
    stamp(trips, idx_sp0 + adj.a, idx_sp0 + adj.b, 1.0 / r_sp);
  }

  // --- Vertical stack per block: die -> TIM -> spreader -> sink center --
  for (int i = 0; i < n; ++i) {
    const double a = fp.block(i).area();
    const double r_die_tim = vertical_r(p.t_die / 2, p.k_die, a) +
                             vertical_r(p.t_interface / 2, p.k_interface, a);
    stamp(trips, i, idx_tim0 + i, 1.0 / r_die_tim);
    const double r_tim_sp =
        vertical_r(p.t_interface / 2, p.k_interface, a) +
        vertical_r(p.t_spreader / 2, p.k_spreader, a);
    stamp(trips, idx_tim0 + i, idx_sp0 + i, 1.0 / r_tim_sp);
    const double r_sp_sink = vertical_r(p.t_spreader / 2, p.k_spreader, a) +
                             vertical_r(p.t_sink / 2, p.k_sink, a);
    stamp(trips, idx_sp0 + i, idx_sink_center, 1.0 / r_sp_sink);
  }

  // --- Die-boundary spreader nodes couple to the periphery trapezoids ---
  // A block whose outer edge lies on the die boundary feeds the matching
  // trapezoid through half its own extent plus half the copper margin.
  const double tol = 1e-9;
  for (int i = 0; i < n; ++i) {
    const Block& b = fp.block(i);
    struct EdgeSpec {
      bool on_boundary;
      int trapezoid;      // index into kDirs order: N, S, E, W
      double edge_len;    // length of the block edge feeding the trapezoid
      double half_extent; // distance from block center to that edge
      double margin;      // copper beyond the die on that side
    };
    const EdgeSpec edges[4] = {
        {std::fabs((b.y + b.height) - die_h) < tol, 0, b.width,
         b.height / 2, (p.s_spreader - die_h) / 2},
        {std::fabs(b.y) < tol, 1, b.width, b.height / 2,
         (p.s_spreader - die_h) / 2},
        {std::fabs((b.x + b.width) - die_w) < tol, 2, b.height,
         b.width / 2, (p.s_spreader - die_w) / 2},
        {std::fabs(b.x) < tol, 3, b.height, b.width / 2,
         (p.s_spreader - die_w) / 2},
    };
    for (const EdgeSpec& e : edges) {
      if (!e.on_boundary) continue;
      // Within the block: constant width. Beyond the die edge the heat
      // spreads into a widening trapezoid; integrating dR = dx/(k t w(x))
      // with w growing linearly from the block edge length to this edge's
      // share of the spreader side gives the log form below.
      const double w1 = e.edge_len;
      const double die_extent = e.trapezoid < 2 ? die_w : die_h;
      const double w2 = p.s_spreader * e.edge_len / die_extent;
      const double r_block =
          e.half_extent / (p.k_spreader * p.t_spreader * w1);
      double r_margin =
          w2 > w1 + tol
              ? e.margin * std::log(w2 / w1) /
                    (p.k_spreader * p.t_spreader * (w2 - w1))
              : e.margin / (p.k_spreader * p.t_spreader * w1);
      // Fin correction: the margin copper sheds heat into the sink along
      // its whole length (it sits directly on the sink base), so the
      // series path to the trapezoid centroid overestimates the effective
      // resistance; the distributed-leakage (fin) solution shortens the
      // effective path to roughly a third of the lumped value.
      r_margin /= 3.0;
      stamp(trips, idx_sp0 + i, idx_sp_per0 + e.trapezoid,
            1.0 / (r_block + r_margin));
    }
  }

  // --- Spreader periphery -> sink center (vertical) ---------------------
  for (int d = 0; d < 4; ++d) {
    const double r_per =
        vertical_r(p.t_spreader / 2, p.k_spreader, a_sp_per_each) +
        vertical_r(p.t_sink / 2, p.k_sink, a_sp_per_each);
    stamp(trips, idx_sp_per0 + d, idx_sink_center, 1.0 / r_per);
  }

  // --- Sink center <-> sink periphery (lateral in sink base) ------------
  {
    const double sink_margin = (p.s_sink - p.s_spreader) / 2.0;
    const double len = p.s_spreader / 4.0 + sink_margin / 2.0;
    const double width = (p.s_spreader + p.s_sink) / 2.0;
    const double r = len / (p.k_sink * p.t_sink * width);
    for (int d = 0; d < 4; ++d)
      stamp(trips, idx_sink_center, idx_sink_per0 + d, 1.0 / r);
  }

  // --- Sink -> convection node (vertical through remaining half sink) ---
  {
    const double r_center = vertical_r(p.t_sink / 2, p.k_sink, a_sp_total);
    stamp(trips, idx_sink_center, idx_convec, 1.0 / r_center);
    for (int d = 0; d < 4; ++d) {
      const double r_per =
          vertical_r(p.t_sink / 2, p.k_sink, a_sink_per_each);
      stamp(trips, idx_sink_per0 + d, idx_convec, 1.0 / r_per);
    }
  }

  // --- Convection to ambient --------------------------------------------
  // Ambient is the reference (temperatures are rises), so the conductance
  // appears only on the diagonal.
  trips.push_back({idx_convec, idx_convec, 1.0 / p.r_convec});

  return RcNetwork(SparseMatrix::from_triplets(total, total, trips),
                   std::move(cap), std::move(names), n, p.ambient);
}

}  // namespace renoc
