// Package and material parameters in the HotSpot style.
//
// The DATE'05 paper states: "Our experimental platform is based on the
// HotSpot thermal library. The HotSpot tool was left with all settings at
// the default values and an ambient temp of 40 C." The constants below are
// the HotSpot default package (die / thermal-interface-material / copper
// spreader / heat sink / convection) with the paper's 40 C ambient.
#pragma once

namespace renoc {

/// Thermal package description. All lengths in meters, conductivities in
/// W/(m K), volumetric heat capacities in J/(m^3 K), temperatures in C.
struct HotSpotParams {
  // --- Die (silicon) ---
  double t_die = 0.30e-3;     ///< die thickness (wire-bond 160 nm stack)
  double k_die = 100.0;       ///< silicon thermal conductivity
  double c_die = 1.75e6;      ///< silicon volumetric heat capacity

  // --- Thermal interface material between die and spreader ---
  // 75 um is the HotSpot 2.x-era default (the tool version available at
  // DATE'05 time); later HotSpot releases thinned it to 20 um. The thicker
  // interface raises the per-block local resistance, which is what makes
  // placement geometry matter at the magnitudes the paper reports.
  double t_interface = 75e-6;
  double k_interface = 4.0;
  double c_interface = 4.0e6;

  // --- Copper heat spreader ---
  double s_spreader = 30e-3;  ///< side length (square)
  double t_spreader = 1e-3;
  double k_spreader = 400.0;
  double c_spreader = 3.55e6;

  // --- Heat sink base (copper in the HotSpot default) ---
  double s_sink = 60e-3;      ///< side length (square)
  double t_sink = 6.9e-3;
  double k_sink = 400.0;
  double c_sink = 3.55e6;

  // --- Convection from sink to ambient ---
  double r_convec = 0.1;      ///< K/W, fan+fins lumped
  double c_convec = 140.4;    ///< J/K

  // --- Environment ---
  double ambient = 40.0;      ///< C (paper's setting; HotSpot default is 45)

  /// Sanity-checks ranges; throws CheckError on nonsense values.
  void validate() const;
};

/// HotSpot defaults with the DATE'05 ambient (40 C).
HotSpotParams date05_hotspot_params();

}  // namespace renoc
