// Equivalent thermal RC network in the HotSpot block-model style.
//
// Node layout for a floorplan with N blocks:
//
//   [0 .. N-1]       die blocks (silicon), one node per floorplan block
//   [N .. 2N-1]      thermal-interface-material (TIM) blocks per die block
//   [2N .. 3N-1]     spreader under-die nodes, one per block, laterally
//                    connected copper — this per-block discretization is
//                    what makes lateral die position matter (central
//                    blocks are farther from the periphery escape paths,
//                    as in HotSpot's finer models)
//   [3N .. 3N+3]     spreader periphery trapezoids (N/S/E/W of the die)
//   [3N+4]           sink center (under the spreader footprint)
//   [3N+5 .. 3N+8]   sink periphery trapezoids
//   [3N+9]           convection node (sink-to-air interface; couples to
//                    ambient through r_convec and carries c_convec)
//
// Conductances:
//   * die block <-> adjacent die block: lateral conduction through silicon,
//     R = (half-extent_a + half-extent_b) / (k_die * t_die * shared_edge)
//   * die block <-> its TIM block: vertical, half die + half TIM thickness
//   * TIM block <-> its spreader node: vertical, half TIM + half spreader
//   * spreader node <-> adjacent spreader node: lateral copper
//   * die-boundary spreader nodes <-> the matching periphery trapezoid
//   * spreader nodes & trapezoids <-> sink center: vertical through the
//     remaining spreader half + half sink
//   * sink center <-> sink periphery: lateral in the sink base
//   * sink nodes <-> convection node: vertical through remaining half sink
//   * convection node <-> ambient: 1 / r_convec (appears only on the
//     diagonal of G)
//
// Temperatures are represented as rises over ambient, so the network ODE is
//   C * dT/dt = P - G * T,      steady state: G * T = P
// and absolute temperature = ambient + T. This is exactly the affine shift
// HotSpot applies; it keeps the solvers free of boundary special cases.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "thermal/hotspot_params.hpp"
#include "util/matrix.hpp"
#include "util/sparse.hpp"

namespace renoc {

/// Assembled thermal network: conductance matrix, heat capacities, and node
/// bookkeeping. Produced by build_rc_network(); immutable afterwards.
///
/// The conductance matrix is stored sparse (CSR); each node couples to at
/// most seven neighbours plus the package hubs, so the dense form is
/// quadratically larger. A dense view is materialized lazily for the dense
/// solver fallback and cross-check tests.
class RcNetwork {
 public:
  RcNetwork(SparseMatrix g, std::vector<double> cap,
            std::vector<std::string> names, int die_count, double ambient);

  int node_count() const { return static_cast<int>(cap_.size()); }
  /// Number of die (floorplan block) nodes; these are nodes [0, die_count).
  int die_count() const { return die_count_; }

  const SparseMatrix& conductance_sparse() const { return g_; }

  /// Dense view of the conductance matrix, built on first use and cached
  /// (not thread-safe, like the rest of the library).
  const Matrix& conductance() const;
  const std::vector<double>& capacitance() const { return cap_; }
  const std::string& node_name(int i) const;
  double ambient() const { return ambient_; }

  /// Expands a per-die-block power vector (size die_count) to a full node
  /// power vector (zeros for package nodes).
  std::vector<double> expand_die_power(
      const std::vector<double>& die_power) const;

  /// Max entry over die nodes of a full temperature-rise vector.
  double peak_die_rise(const std::vector<double>& rise) const;

  /// Mean over die nodes of a full temperature-rise vector.
  double mean_die_rise(const std::vector<double>& rise) const;

 private:
  SparseMatrix g_;
  mutable std::unique_ptr<Matrix> dense_g_;  // lazy cache for conductance()
  std::vector<double> cap_;
  std::vector<std::string> names_;
  int die_count_ = 0;
  double ambient_ = 0.0;
};

/// Builds the RC network for `fp` using package `params`.
/// The floorplan's bounding box must fit within the spreader.
RcNetwork build_rc_network(const Floorplan& fp, const HotSpotParams& params);

}  // namespace renoc
