// Thermal solvers over an RcNetwork.
//
// SteadyStateSolver:  G * T = P          (one LU factorization, many solves)
// TransientSolver:    C dT/dt = P - G T  via backward Euler,
//                     (C/dt + G) T_{k+1} = C/dt * T_k + P_{k+1}
//
// Backward Euler is unconditionally stable, which matters here: the network
// couples die nodes with ~1 ms time constants to a convection node with a
// ~14 s time constant, i.e. the ODE is stiff, and an explicit method at the
// microsecond steps the migration study needs would be dominated by
// stability, not accuracy. The step matrix is factored once per dt.
#pragma once

#include <memory>
#include <vector>

#include "thermal/rc_network.hpp"
#include "util/matrix.hpp"

namespace renoc {

/// Direct solver for steady-state temperature rises.
class SteadyStateSolver {
 public:
  explicit SteadyStateSolver(const RcNetwork& net);

  /// Full-node temperature rises for a full-node power vector.
  std::vector<double> solve(const std::vector<double>& power) const;

  /// Convenience: per-die-block power in, full-node rises out.
  std::vector<double> solve_die_power(
      const std::vector<double>& die_power) const;

  /// Peak absolute die temperature (ambient + peak rise) for a die power map.
  double peak_die_temperature(const std::vector<double>& die_power) const;

  const RcNetwork& network() const { return *net_; }

 private:
  const RcNetwork* net_;
  LuFactorization lu_;
};

/// Fixed-step backward-Euler transient integrator.
class TransientSolver {
 public:
  /// Prefactors (C/dt + G) for time step `dt` (seconds).
  TransientSolver(const RcNetwork& net, double dt);

  double dt() const { return dt_; }

  /// Sets the current temperature-rise state (full node vector).
  void set_state(std::vector<double> rise);

  /// Initializes the state to the steady state of `die_power`.
  void set_state_to_steady(const std::vector<double>& die_power);

  const std::vector<double>& state() const { return state_; }

  /// Advances one step under a full-node power vector.
  void step(const std::vector<double>& power);

  /// Advances one step under a per-die-block power vector.
  void step_die_power(const std::vector<double>& die_power);

  /// Advances `steps` steps under constant die power, returning the maximum
  /// peak die rise observed at step boundaries.
  double run_die_power(const std::vector<double>& die_power, int steps);

  const RcNetwork& network() const { return *net_; }

 private:
  const RcNetwork* net_;
  double dt_;
  LuFactorization step_lu_;       // LU of (C/dt + G)
  std::vector<double> c_over_dt_;  // diagonal C/dt
  std::vector<double> state_;      // temperature rises
  std::vector<double> rhs_;        // scratch
};

}  // namespace renoc
