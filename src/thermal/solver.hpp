// Thermal solvers over an RcNetwork.
//
// SteadyStateSolver:  G * T = P          (one factorization, many solves)
// TransientSolver:    C dT/dt = P - G T  via backward Euler,
//                     (C/dt + G) T_{k+1} = C/dt * T_k + P_{k+1}
//
// Backward Euler is unconditionally stable, which matters here: the network
// couples die nodes with ~1 ms time constants to a convection node with a
// ~14 s time constant, i.e. the ODE is stiff, and an explicit method at the
// microsecond steps the migration study needs would be dominated by
// stability, not accuracy. The step matrix is factored once per dt.
//
// Both G and (C/dt + G) are symmetric positive definite, so the default
// backend is the sparse LDL^T of util/sparse.hpp — O(n * b^2) factor and
// O(nnz(L)) solve against the dense LU's O(n^3) / O(n^2). Small networks
// (and anything run with RENOC_DENSE_SOLVE=1 in the environment, or an
// explicit SolverBackend::kDense) keep the original dense path, which also
// serves as the cross-check oracle in tests.
#pragma once

#include <memory>
#include <vector>

#include "thermal/rc_network.hpp"
#include "util/matrix.hpp"
#include "util/sparse.hpp"

namespace renoc {

/// Which factorization a thermal solver uses.
enum class SolverBackend {
  kAuto,    ///< sparse LDL^T at >= kDenseNodeCutoff nodes, dense LU below;
            ///< RENOC_DENSE_SOLVE=1 in the environment forces dense
  kDense,   ///< dense LU with partial pivoting (the original path)
  kSparse,  ///< sparse LDL^T with fill-reducing ordering
};

/// Node count below which kAuto prefers the dense LU: at a few dozen nodes
/// the dense factor fits in cache and the sparse bookkeeping buys nothing.
inline constexpr int kDenseNodeCutoff = 64;

/// The backend `requested` resolves to for a network of `node_count`
/// nodes (kAuto applies the cutoff above and the RENOC_DENSE_SOLVE
/// environment override). Exposed so other layers that maintain their own
/// factorizations — the co-sim engine in core/thermal_runtime — pick the
/// same backend as the solvers here.
SolverBackend resolve_solver_backend(SolverBackend requested, int node_count);

/// The diagonal C/dt of the backward-Euler step matrix for time step `dt`.
/// Shared with the co-sim engine so both paths assemble bit-identical
/// step matrices (the engine's reference-agreement contract depends on
/// that).
std::vector<double> step_capacitance_diagonal(const RcNetwork& net,
                                              double dt);

/// The dense backward-Euler step matrix C/dt + G (dense-backend paths).
Matrix dense_step_matrix(const RcNetwork& net,
                         const std::vector<double>& c_over_dt);

/// Direct solver for steady-state temperature rises.
class SteadyStateSolver {
 public:
  explicit SteadyStateSolver(const RcNetwork& net,
                             SolverBackend backend = SolverBackend::kAuto);

  /// Full-node temperature rises for a full-node power vector.
  std::vector<double> solve(const std::vector<double>& power) const;

  /// solve() into a caller-provided buffer: `rise` is resized to the node
  /// count and overwritten, so a reused buffer makes repeated solves
  /// allocation-free. Results are bit-identical to solve().
  void solve_into(const std::vector<double>& power,
                  std::vector<double>& rise) const;

  /// Convenience: per-die-block power in, full-node rises out.
  std::vector<double> solve_die_power(
      const std::vector<double>& die_power) const;

  /// solve_die_power() into a caller-provided buffer (see solve_into).
  void solve_die_power_into(const std::vector<double>& die_power,
                            std::vector<double>& rise) const;

  /// Peak absolute die temperature (ambient + peak rise) for a die power map.
  double peak_die_temperature(const std::vector<double>& die_power) const;

  /// True when the sparse backend was selected.
  bool uses_sparse() const { return ldlt_ != nullptr; }

  const RcNetwork& network() const { return *net_; }

 private:
  const RcNetwork* net_;
  std::unique_ptr<LuFactorization> lu_;  // exactly one of lu_/ldlt_ is set
  std::unique_ptr<SparseLdlt> ldlt_;
  mutable std::vector<double> full_power_;  // die-power expansion scratch
};

/// Fixed-step backward-Euler transient integrator.
class TransientSolver {
 public:
  /// Prefactors (C/dt + G) for time step `dt` (seconds).
  TransientSolver(const RcNetwork& net, double dt,
                  SolverBackend backend = SolverBackend::kAuto);

  double dt() const { return dt_; }

  /// Sets the current temperature-rise state (full node vector).
  void set_state(std::vector<double> rise);

  /// Initializes the state to the steady state of `die_power`.
  void set_state_to_steady(const std::vector<double>& die_power);

  const std::vector<double>& state() const { return state_; }

  /// Advances one step under a full-node power vector.
  void step(const std::vector<double>& power);

  /// Advances `nrhs` independent trajectories one step each. `powers` and
  /// `states` are row-major n x nrhs blocks (trajectory j's component i at
  /// index i * nrhs + j); `states` holds the advanced states on exit. The
  /// fused C/dt * state + P right-hand-side build and the blocked
  /// solve_multi replicate step()'s arithmetic per trajectory, so each
  /// column advances bit-identically to a lone solver stepped with that
  /// column's power — the contract behind AdaptivePolicy's batched
  /// lookahead. Does not touch the scalar state().
  void step_multi(const std::vector<double>& powers,
                  std::vector<double>& states, int nrhs);

  /// Advances one step under a per-die-block power vector.
  void step_die_power(const std::vector<double>& die_power);

  /// Advances `steps` steps under constant die power, returning the maximum
  /// peak die rise observed at step boundaries.
  double run_die_power(const std::vector<double>& die_power, int steps);

  /// True when the sparse backend was selected.
  bool uses_sparse() const { return step_ldlt_ != nullptr; }

  const RcNetwork& network() const { return *net_; }

 private:
  const RcNetwork* net_;
  double dt_;
  std::unique_ptr<LuFactorization> step_lu_;  // LU of (C/dt + G), or
  std::unique_ptr<SparseLdlt> step_ldlt_;     // ... its sparse LDL^T
  std::vector<double> c_over_dt_;  // diagonal C/dt
  std::vector<double> state_;      // temperature rises
  std::vector<double> rhs_;        // scratch
  std::vector<double> rhs_multi_;  // step_multi scratch
  std::vector<double> full_power_;  // die-power expansion scratch
};

}  // namespace renoc
