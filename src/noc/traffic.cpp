#include "noc/traffic.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace renoc {

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniformRandom: return "uniform";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kBitComplement: return "bit-complement";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kNeighbor: return "neighbor";
  }
  return "?";
}

TrafficGenerator::TrafficGenerator(Fabric& fabric, TrafficPattern pattern,
                                   double injection_rate, int message_words,
                                   Rng rng, int hotspot)
    : fabric_(&fabric),
      pattern_(pattern),
      flit_rate_(injection_rate),
      message_words_(message_words),
      rng_(rng),
      hotspot_(hotspot) {
  RENOC_CHECK(injection_rate > 0.0 && injection_rate <= 1.0);
  RENOC_CHECK(message_words_ >= 1);
  RENOC_CHECK(hotspot_ >= 0 && hotspot_ < fabric.node_count());
}

int TrafficGenerator::destination(int src) {
  const GridDim dim = fabric_->config().dim;
  const int n = dim.node_count();
  switch (pattern_) {
    case TrafficPattern::kUniformRandom: {
      int dst = static_cast<int>(rng_.next_below(
          static_cast<std::uint64_t>(n - 1)));
      if (dst >= src) ++dst;  // skip self
      return dst;
    }
    case TrafficPattern::kTranspose: {
      const GridCoord c = index_to_coord(src, dim);
      // Transpose is only total on square meshes; clamp otherwise.
      const GridCoord t{std::min(c.y, dim.width - 1),
                        std::min(c.x, dim.height - 1)};
      return coord_to_index(t, dim);
    }
    case TrafficPattern::kBitComplement:
      return n - 1 - src;
    case TrafficPattern::kHotspot:
      return hotspot_;
    case TrafficPattern::kNeighbor: {
      const GridCoord c = index_to_coord(src, dim);
      const GridCoord e{(c.x + 1) % dim.width, c.y};
      return coord_to_index(e, dim);
    }
  }
  RENOC_FAIL("unknown traffic pattern");
}

void TrafficGenerator::step() {
  const int n = fabric_->node_count();
  // Message-level Bernoulli injection: a node starts a new message with
  // probability flit_rate / message_words per cycle, giving the requested
  // average flit injection rate.
  const double p = flit_rate_ / message_words_;
  for (int src = 0; src < n; ++src) {
    if (!rng_.next_bool(p)) continue;
    const int dst = destination(src);
    if (dst == src) continue;
    Message m;
    m.src = src;
    m.dst = dst;
    m.tag = messages_sent_;
    m.payload.assign(static_cast<std::size_t>(message_words_), 0xa5a5a5a5ULL);
    fabric_->send(m);
    ++messages_sent_;
  }
  fabric_->step();
  for (int node = 0; node < n; ++node) {
    while (fabric_->try_receive(node)) ++messages_received_;
  }
}

void TrafficGenerator::run(int cycles) {
  for (int i = 0; i < cycles; ++i) step();
}

}  // namespace renoc
