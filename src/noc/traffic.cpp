#include "noc/traffic.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace renoc {

namespace {

/// Address width of an n-node mesh: enough bits to index every node.
int address_bits(int n) {
  return std::max(1, static_cast<int>(std::bit_width(
                         static_cast<unsigned>(n - 1))));
}

}  // namespace

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniformRandom: return "uniform";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kBitComplement: return "bit-complement";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kNeighbor: return "neighbor";
    case TrafficPattern::kBitReverse: return "bit-reverse";
    case TrafficPattern::kShuffle: return "shuffle";
  }
  return "?";
}

void BurstParams::validate() const {
  if (!enabled) return;
  RENOC_CHECK_MSG(p_on_to_off > 0.0 && p_on_to_off <= 1.0,
                  "burst p_on_to_off must be in (0, 1]");
  RENOC_CHECK_MSG(p_off_to_on > 0.0 && p_off_to_on <= 1.0,
                  "burst p_off_to_on must be in (0, 1]");
}

TrafficGenerator::TrafficGenerator(Fabric& fabric, TrafficPattern pattern,
                                   double injection_rate, int message_words,
                                   Rng rng, int hotspot, BurstParams burst)
    : fabric_(&fabric),
      pattern_(pattern),
      flit_rate_(injection_rate),
      message_words_(message_words),
      rng_(rng),
      hotspot_(hotspot),
      burst_(burst) {
  RENOC_CHECK(injection_rate > 0.0 && injection_rate <= 1.0);
  RENOC_CHECK(message_words_ >= 1);
  RENOC_CHECK(hotspot_ >= 0 && hotspot_ < fabric.node_count());
  burst_.validate();
  RENOC_CHECK_MSG(
      flit_rate_ / message_words_ / burst_.duty_cycle() <= 1.0,
      "on-state injection probability exceeds 1 — raise the burst duty "
      "cycle or lower the injection rate");
  if (burst_.enabled) {
    // Start each node in its stationary state so there is no warm-up bias
    // toward all-on or all-off.
    node_on_.resize(static_cast<std::size_t>(fabric.node_count()));
    for (auto& on : node_on_)
      on = rng_.next_bool(burst_.duty_cycle()) ? 1 : 0;
  }
}

int TrafficGenerator::destination(int src) {
  const GridDim dim = fabric_->config().dim;
  const int n = dim.node_count();
  switch (pattern_) {
    case TrafficPattern::kUniformRandom: {
      int dst = static_cast<int>(rng_.next_below(
          static_cast<std::uint64_t>(n - 1)));
      if (dst >= src) ++dst;  // skip self
      return dst;
    }
    case TrafficPattern::kTranspose: {
      const GridCoord c = index_to_coord(src, dim);
      // Transpose is only total on square meshes; clamp otherwise.
      const GridCoord t{std::min(c.y, dim.width - 1),
                        std::min(c.x, dim.height - 1)};
      return coord_to_index(t, dim);
    }
    case TrafficPattern::kBitComplement:
      return n - 1 - src;
    case TrafficPattern::kHotspot:
      return hotspot_;
    case TrafficPattern::kNeighbor: {
      const GridCoord c = index_to_coord(src, dim);
      const GridCoord e{(c.x + 1) % dim.width, c.y};
      return coord_to_index(e, dim);
    }
    case TrafficPattern::kBitReverse: {
      const int bits = address_bits(n);
      int dst = 0;
      for (int b = 0; b < bits; ++b)
        if ((src >> b) & 1) dst |= 1 << (bits - 1 - b);
      // On non-power-of-two meshes some images land outside the mesh;
      // treat those sources as fixed points (counted as skips).
      return dst < n ? dst : src;
    }
    case TrafficPattern::kShuffle: {
      const int bits = address_bits(n);
      const int dst =
          ((src << 1) | (src >> (bits - 1))) & ((1 << bits) - 1);
      return dst < n ? dst : src;
    }
  }
  RENOC_FAIL("unknown traffic pattern");
}

void TrafficGenerator::step() {
  const int n = fabric_->node_count();
  // Message-level Bernoulli injection: a node starts a new message with
  // probability flit_rate / message_words per cycle (scaled up inside a
  // burst's on state), giving the requested average flit injection rate.
  const double p = flit_rate_ / message_words_ / burst_.duty_cycle();
  for (int src = 0; src < n; ++src) {
    if (burst_.enabled) {
      const bool was_on = node_on_[static_cast<std::size_t>(src)] != 0;
      // One transition draw per node per cycle keeps the RNG stream
      // aligned regardless of state.
      const bool flip = rng_.next_bool(was_on ? burst_.p_on_to_off
                                              : burst_.p_off_to_on);
      node_on_[static_cast<std::size_t>(src)] =
          (was_on != flip) ? 1 : 0;
      if (!was_on) continue;
    }
    if (!rng_.next_bool(p)) continue;
    const int dst = destination(src);
    if (dst == src) {
      // Fixed point of the pattern: the draw is part of the offered load
      // but cannot inject. Counted, not silently dropped — see
      // offered_flit_rate()/injected_flit_rate().
      ++messages_skipped_;
      continue;
    }
    Message m = fabric_->acquire_message();
    m.src = src;
    m.dst = dst;
    m.tag = messages_sent_;
    m.payload.assign(static_cast<std::size_t>(message_words_), 0xa5a5a5a5ULL);
    fabric_->send(std::move(m));
    ++messages_sent_;
  }
  fabric_->step();
  for (int node = 0; node < n; ++node) {
    while (auto msg = fabric_->try_receive(node)) {
      ++messages_received_;
      fabric_->recycle(std::move(*msg));
    }
  }
  ++cycles_run_;
}

void TrafficGenerator::run(int cycles) {
  for (int i = 0; i < cycles; ++i) step();
}

double TrafficGenerator::offered_flit_rate() const {
  if (cycles_run_ == 0) return 0.0;
  const double draws =
      static_cast<double>(messages_sent_ + messages_skipped_);
  return draws * message_words_ /
         (static_cast<double>(fabric_->node_count()) *
          static_cast<double>(cycles_run_));
}

double TrafficGenerator::injected_flit_rate() const {
  if (cycles_run_ == 0) return 0.0;
  return static_cast<double>(messages_sent_) * message_words_ /
         (static_cast<double>(fabric_->node_count()) *
          static_cast<double>(cycles_run_));
}

double TrafficGenerator::accepted_flit_rate() const {
  if (cycles_run_ == 0) return 0.0;
  return static_cast<double>(messages_received_) * message_words_ /
         (static_cast<double>(fabric_->node_count()) *
          static_cast<double>(cycles_run_));
}

}  // namespace renoc
