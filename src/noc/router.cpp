#include "noc/router.hpp"

#include "util/check.hpp"

namespace renoc {

Router::Router(int node, const GridDim& dim, int buffer_depth)
    : node_(node),
      dim_(dim),
      coord_(index_to_coord(node, dim)),
      buffer_depth_(buffer_depth) {
  RENOC_CHECK(buffer_depth_ >= 1);
  for (int d = 0; d < kDirectionCount; ++d) {
    owner_input_[d] = -1;
    owner_packet_[d] = 0;
    rr_pointer_[d] = 0;
  }
}

int Router::fifo_space(int port) const {
  RENOC_CHECK(port >= 0 && port < kDirectionCount);
  return buffer_depth_ - static_cast<int>(fifo_[port].size());
}

bool Router::fifo_empty(int port) const {
  RENOC_CHECK(port >= 0 && port < kDirectionCount);
  return fifo_[port].empty();
}

int Router::fifo_occupancy(int port) const {
  RENOC_CHECK(port >= 0 && port < kDirectionCount);
  return static_cast<int>(fifo_[port].size());
}

void Router::push(int port, const Flit& flit) {
  RENOC_CHECK_MSG(fifo_space(port) > 0, "FIFO overflow at node "
                                            << node_ << " port " << port
                                            << " — credit protocol violated");
  fifo_[port].push_back(flit);
}

Flit Router::pop(int port) {
  RENOC_CHECK(port >= 0 && port < kDirectionCount);
  RENOC_CHECK(!fifo_[port].empty());
  Flit f = fifo_[port].front();
  fifo_[port].pop_front();
  return f;
}

int Router::arbitrate(const bool credit_ok[kDirectionCount],
                      std::vector<PlannedMove>& out) {
  int new_allocations = 0;
  for (int o = 0; o < kDirectionCount; ++o) {
    const Direction out_dir = static_cast<Direction>(o);
    if (owner_input_[o] >= 0) {
      // Wormhole continuation: move the next flit of the owning packet if
      // it has arrived and the downstream FIFO can take it.
      const int in = owner_input_[o];
      if (!fifo_[in].empty() &&
          fifo_[in].front().packet == owner_packet_[o] && credit_ok[o]) {
        out.push_back(PlannedMove{node_, in, out_dir});
      }
      continue;
    }
    if (!credit_ok[o]) continue;
    // Round-robin over inputs looking for a head flit routed to this output.
    for (int k = 1; k <= kDirectionCount; ++k) {
      const int in = (rr_pointer_[o] + k) % kDirectionCount;
      if (fifo_[in].empty()) continue;
      const Flit& head = fifo_[in].front();
      if (!head.is_head()) continue;  // body/tail of a stalled packet
      const GridCoord dst = index_to_coord(head.dst, dim_);
      if (xy_route(coord_, dst) != out_dir) continue;
      out.push_back(PlannedMove{node_, in, out_dir});
      owner_input_[o] = in;
      owner_packet_[o] = head.packet;
      rr_pointer_[o] = in;
      ++new_allocations;
      break;
    }
  }
  return new_allocations;
}

void Router::release_output(Direction out_port) {
  owner_input_[static_cast<int>(out_port)] = -1;
  owner_packet_[static_cast<int>(out_port)] = 0;
}

bool Router::quiescent() const {
  for (int p = 0; p < kDirectionCount; ++p)
    if (!fifo_[p].empty()) return false;
  for (int o = 0; o < kDirectionCount; ++o)
    if (owner_input_[o] >= 0) return false;
  return true;
}

int Router::buffered_flits() const {
  int n = 0;
  for (int p = 0; p < kDirectionCount; ++p)
    n += static_cast<int>(fifo_[p].size());
  return n;
}

}  // namespace renoc
