// Dimension-order (XY) routing on a 2-D mesh, plus the table-driven
// adaptive route layer used on degraded fabrics.
//
// XY routing first corrects the X coordinate, then the Y coordinate, then
// ejects locally. On a mesh with one flit class this is provably
// deadlock-free (no turn from Y back to X exists), which is why the paper's
// platform — like most NoC prototypes of the era — uses it.
//
// When links or routers die, XY's fixed paths break. build_adaptive_routes
// computes per-node next-hop tables by BFS over the *live-link* graph under
// the west-first turn restriction (Glass & Ni): a packet takes all of its
// westward hops first, so the two turns into west (north->west,
// south->west) and all 180-degree turns are forbidden. Prohibiting those
// turns leaves the channel dependency graph acyclic, so any set of routes
// drawn from the table is deadlock-free — including routes re-planned
// mid-flight after a topology change, because the table is keyed by the
// flit's current travel direction and only ever extends a west-first-legal
// suffix. Destinations no west-first-legal live path reaches are marked
// kUnreachableRoute; the fabric reports such packets instead of spinning.
#pragma once

#include <cstdint>
#include <vector>

#include "floorplan/grid.hpp"

namespace renoc {

/// Router port directions. kLocal is the PE/NI port.
enum class Direction : std::uint8_t {
  kNorth = 0,  // +y
  kSouth = 1,  // -y
  kEast = 2,   // +x
  kWest = 3,   // -x
  kLocal = 4,
};

inline constexpr int kDirectionCount = 5;

/// Human-readable direction name ("north", ...).
const char* to_string(Direction d);

/// The opposite mesh direction (north<->south, east<->west). kLocal has no
/// opposite; passing it is a checked error.
Direction opposite(Direction d);

/// Next output port for a flit currently at `here` heading to `dst`.
Direction xy_route(const GridCoord& here, const GridCoord& dst);

/// Neighbor coordinate one hop in direction `d` (must not be kLocal).
GridCoord neighbor(const GridCoord& c, Direction d);

/// The full XY path from src to dst as a list of traversed node indices,
/// starting with src and ending with dst (inclusive). Used by the migration
/// phase scheduler to prove link-disjointness.
std::vector<int> xy_path(const GridCoord& src, const GridCoord& dst,
                         const GridDim& dim);

/// Adaptive-table sentinel: no west-first-legal live path to the
/// destination exists from this (node, travel direction).
inline constexpr std::uint8_t kUnreachableRoute = 0xFF;

/// West-first turn legality: may a flit travelling in direction `moving`
/// leave its current router through `out`? Freshly injected flits
/// (moving == kLocal) may go anywhere; ejection (out == kLocal) is always
/// legal; 180-degree turns and the two turns into west are not.
bool turn_allowed(Direction moving, Direction out);

/// Rebuilds the adaptive next-hop table for the live topology.
///
/// `link_up[node*4 + dir]` (nonzero = up) and `router_up[node]` describe
/// the surviving mesh. The table is indexed
///   table[(node * kDirectionCount + in_port) * node_count + dst]
/// where in_port is the input FIFO holding the flit (kLocal = freshly
/// injected); entries are the output Direction, or kUnreachableRoute. The
/// in_port key carries the flit's travel direction (a flit in input port p
/// arrived moving opposite(p)), which is the state the west-first turn
/// restriction needs. Paths are BFS-shortest among the turn-legal live
/// paths, with a fixed deterministic tie-break.
///
/// Cost is O(node_count^2) per call — strictly a topology-change-epoch
/// operation. Calling it from inside a renoc-hot region is a lint error
/// (rule route-rebuild).
void build_adaptive_routes(const GridDim& dim,
                           const std::vector<std::uint8_t>& link_up,
                           const std::vector<std::uint8_t>& router_up,
                           std::vector<std::uint8_t>& table);

}  // namespace renoc
