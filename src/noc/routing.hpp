// Dimension-order (XY) routing on a 2-D mesh.
//
// XY routing first corrects the X coordinate, then the Y coordinate, then
// ejects locally. On a mesh with one flit class this is provably
// deadlock-free (no turn from Y back to X exists), which is why the paper's
// platform — like most NoC prototypes of the era — uses it.
#pragma once

#include "floorplan/grid.hpp"

namespace renoc {

/// Router port directions. kLocal is the PE/NI port.
enum class Direction : std::uint8_t {
  kNorth = 0,  // +y
  kSouth = 1,  // -y
  kEast = 2,   // +x
  kWest = 3,   // -x
  kLocal = 4,
};

inline constexpr int kDirectionCount = 5;

/// Human-readable direction name ("north", ...).
const char* to_string(Direction d);

/// The opposite mesh direction (north<->south, east<->west). kLocal has no
/// opposite; passing it is a checked error.
Direction opposite(Direction d);

/// Next output port for a flit currently at `here` heading to `dst`.
Direction xy_route(const GridCoord& here, const GridCoord& dst);

/// Neighbor coordinate one hop in direction `d` (must not be kLocal).
GridCoord neighbor(const GridCoord& c, Direction d);

/// The full XY path from src to dst as a list of traversed node indices,
/// starting with src and ending with dst (inclusive). Used by the migration
/// phase scheduler to prove link-disjointness.
std::vector<int> xy_path(const GridCoord& src, const GridCoord& dst,
                         const GridDim& dim);

}  // namespace renoc
