// Flit and message types for the wormhole NoC.
//
// A message (arbitrary 64-bit payload words + a tag) is carried by exactly
// one wormhole packet: a Head flit, zero or more Body flits, and a Tail
// flit; a single-word message uses a combined HeadTail flit. The head flit
// carries the destination used by the routers; payload words ride one per
// flit (64-bit physical channel, as in the ISVLSI'05 LDPC NoC).
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace renoc {

/// Globally unique packet identifier (assigned by the fabric at injection).
using PacketId = std::uint64_t;

enum class FlitType : std::uint8_t { kHead, kBody, kTail, kHeadTail };

/// One flow-control unit.
struct Flit {
  FlitType type = FlitType::kHead;
  PacketId packet = 0;
  int src = 0;           ///< source node index
  int dst = 0;           ///< destination node index
  std::uint32_t seq = 0;  ///< position within the packet (0 = head)
  std::uint64_t payload = 0;
  std::uint64_t tag = 0;  ///< message tag, replicated from the message
  Cycle injected_at = 0;  ///< cycle the head entered the injection queue
  /// Total flits of the carrying packet, stamped at staging. Lets the
  /// receiver reserve the full payload on the head flit instead of growing
  /// one push_back per body flit (real NoC headers carry packet length for
  /// the same reason).
  std::uint32_t pkt_flits = 1;
  /// Per-source message sequence number, stamped at staging and identical
  /// across retransmissions of the same message (the PacketId is fresh per
  /// attempt). Reassembly suppresses duplicates by (src, msg_seq) when the
  /// delivery guard is active; the reference engine ignores the field.
  std::uint32_t msg_seq = 0;

  bool is_head() const {
    return type == FlitType::kHead || type == FlitType::kHeadTail;
  }
  bool is_tail() const {
    return type == FlitType::kTail || type == FlitType::kHeadTail;
  }
};

/// Application-level message exchanged between PEs through the NoC.
struct Message {
  int src = 0;
  int dst = 0;
  std::uint64_t tag = 0;             ///< application-defined discriminator
  std::vector<std::uint64_t> payload;  ///< 64-bit words; may be empty

  /// Number of flits the message occupies on the wire (>= 1; the head flit
  /// carries the first payload word if any).
  int flit_count() const {
    return payload.empty() ? 1 : static_cast<int>(payload.size());
  }
};

}  // namespace renoc
