#include "noc/routing.hpp"

#include "util/check.hpp"

namespace renoc {

const char* to_string(Direction d) {
  switch (d) {
    case Direction::kNorth: return "north";
    case Direction::kSouth: return "south";
    case Direction::kEast: return "east";
    case Direction::kWest: return "west";
    case Direction::kLocal: return "local";
  }
  return "?";
}

Direction opposite(Direction d) {
  switch (d) {
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
    case Direction::kLocal: break;
  }
  RENOC_FAIL("kLocal has no opposite direction");
}

Direction xy_route(const GridCoord& here, const GridCoord& dst) {
  if (dst.x > here.x) return Direction::kEast;
  if (dst.x < here.x) return Direction::kWest;
  if (dst.y > here.y) return Direction::kNorth;
  if (dst.y < here.y) return Direction::kSouth;
  return Direction::kLocal;
}

GridCoord neighbor(const GridCoord& c, Direction d) {
  switch (d) {
    case Direction::kNorth: return {c.x, c.y + 1};
    case Direction::kSouth: return {c.x, c.y - 1};
    case Direction::kEast: return {c.x + 1, c.y};
    case Direction::kWest: return {c.x - 1, c.y};
    case Direction::kLocal: break;
  }
  RENOC_FAIL("neighbor() requires a mesh direction");
}

std::vector<int> xy_path(const GridCoord& src, const GridCoord& dst,
                         const GridDim& dim) {
  RENOC_CHECK(in_bounds(src, dim) && in_bounds(dst, dim));
  std::vector<int> path;
  GridCoord cur = src;
  path.push_back(coord_to_index(cur, dim));
  while (!(cur == dst)) {
    cur = neighbor(cur, xy_route(cur, dst));
    path.push_back(coord_to_index(cur, dim));
  }
  return path;
}

}  // namespace renoc
