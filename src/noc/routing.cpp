#include "noc/routing.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace renoc {

const char* to_string(Direction d) {
  switch (d) {
    case Direction::kNorth: return "north";
    case Direction::kSouth: return "south";
    case Direction::kEast: return "east";
    case Direction::kWest: return "west";
    case Direction::kLocal: return "local";
  }
  return "?";
}

Direction opposite(Direction d) {
  switch (d) {
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
    case Direction::kLocal: break;
  }
  RENOC_FAIL("kLocal has no opposite direction");
}

Direction xy_route(const GridCoord& here, const GridCoord& dst) {
  if (dst.x > here.x) return Direction::kEast;
  if (dst.x < here.x) return Direction::kWest;
  if (dst.y > here.y) return Direction::kNorth;
  if (dst.y < here.y) return Direction::kSouth;
  return Direction::kLocal;
}

GridCoord neighbor(const GridCoord& c, Direction d) {
  switch (d) {
    case Direction::kNorth: return {c.x, c.y + 1};
    case Direction::kSouth: return {c.x, c.y - 1};
    case Direction::kEast: return {c.x + 1, c.y};
    case Direction::kWest: return {c.x - 1, c.y};
    case Direction::kLocal: break;
  }
  RENOC_FAIL("neighbor() requires a mesh direction");
}

std::vector<int> xy_path(const GridCoord& src, const GridCoord& dst,
                         const GridDim& dim) {
  RENOC_CHECK(in_bounds(src, dim) && in_bounds(dst, dim));
  std::vector<int> path;
  GridCoord cur = src;
  path.push_back(coord_to_index(cur, dim));
  while (!(cur == dst)) {
    cur = neighbor(cur, xy_route(cur, dst));
    path.push_back(coord_to_index(cur, dim));
  }
  return path;
}

bool turn_allowed(Direction moving, Direction out) {
  if (out == Direction::kLocal) return true;   // ejection
  if (moving == Direction::kLocal) return true;  // injection
  if (out == opposite(moving)) return false;     // no 180-degree turns
  // West-first: all westward hops happen before any other hop, so the only
  // way to be moving west is to have been moving west (or injecting).
  if (out == Direction::kWest && moving != Direction::kWest) return false;
  return true;
}

void build_adaptive_routes(const GridDim& dim,
                           const std::vector<std::uint8_t>& link_up,
                           const std::vector<std::uint8_t>& router_up,
                           std::vector<std::uint8_t>& table) {
  const int n = dim.node_count();
  const std::size_t nodes = static_cast<std::size_t>(n);
  RENOC_CHECK(link_up.size() == nodes * 4);
  RENOC_CHECK(router_up.size() == nodes);
  table.assign(nodes * kDirectionCount * nodes, kUnreachableRoute);

  // Per destination: backward BFS over the state graph (node, moving
  // direction). State (v, md) means "a flit at v that arrived travelling
  // md" (md == kLocal: freshly injected at v). dist is hops to dst over
  // live links using only west-first-legal turns; next_hop[(v, md)] is the
  // first output of one shortest such path. BFS order (fixed seed order,
  // FIFO queue, fixed predecessor scan order) makes the tie-break
  // deterministic — table contents are a pure function of the topology.
  const std::size_t states = nodes * kDirectionCount;
  std::vector<std::uint8_t> next_hop(states);
  std::vector<std::uint8_t> visited(states);
  std::vector<std::uint32_t> queue;
  queue.reserve(states);
  const auto state_of = [nodes](int v, int md) {
    return static_cast<std::size_t>(v) * kDirectionCount +
           static_cast<std::size_t>(md);
  };

  for (int dst = 0; dst < n; ++dst) {
    std::fill(next_hop.begin(), next_hop.end(), kUnreachableRoute);
    std::fill(visited.begin(), visited.end(), std::uint8_t{0});
    queue.clear();
    if (router_up[static_cast<std::size_t>(dst)] != 0) {
      for (int md = 0; md < kDirectionCount; ++md) {
        const std::size_t s = state_of(dst, md);
        next_hop[s] = static_cast<std::uint8_t>(Direction::kLocal);
        visited[s] = 1;
        queue.push_back(static_cast<std::uint32_t>(s));
      }
    }
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::size_t s = queue[qi];
      const int v = static_cast<int>(s) / kDirectionCount;
      const int md = static_cast<int>(s) % kDirectionCount;
      // A state with md == kLocal is an injection start: nothing precedes
      // it. Otherwise the flit came from u = neighbor against md via u's
      // output md; extend every legal predecessor travel direction.
      if (md == static_cast<int>(Direction::kLocal)) continue;
      const Direction move = static_cast<Direction>(md);
      const GridCoord from =
          neighbor(index_to_coord(v, dim), opposite(move));
      if (!in_bounds(from, dim)) continue;
      const int u = coord_to_index(from, dim);
      if (router_up[static_cast<std::size_t>(u)] == 0) continue;
      if (link_up[static_cast<std::size_t>(u) * 4 +
                  static_cast<std::size_t>(md)] == 0)
        continue;
      for (int pmd = 0; pmd < kDirectionCount; ++pmd) {
        if (!turn_allowed(static_cast<Direction>(pmd), move)) continue;
        const std::size_t ps = state_of(u, pmd);
        if (visited[ps] != 0) continue;
        visited[ps] = 1;
        next_hop[ps] = static_cast<std::uint8_t>(md);
        queue.push_back(static_cast<std::uint32_t>(ps));
      }
    }
    // Project states onto the (node, input port) key the fabric indexes
    // by: a flit buffered in mesh input port p is travelling opposite(p);
    // the local port holds freshly injected flits.
    for (int v = 0; v < n; ++v) {
      for (int p = 0; p < kDirectionCount; ++p) {
        const int md =
            p == static_cast<int>(Direction::kLocal)
                ? p
                : static_cast<int>(opposite(static_cast<Direction>(p)));
        table[(static_cast<std::size_t>(v) * kDirectionCount +
               static_cast<std::size_t>(p)) *
                  nodes +
              static_cast<std::size_t>(dst)] = next_hop[state_of(v, md)];
      }
    }
  }
}

}  // namespace renoc
