// Input-buffered wormhole router.
//
// Microarchitecture (one per mesh tile):
//   * five input FIFOs (north/south/east/west/local), `buffer_depth` flits
//   * XY routing computed on the head flit at the FIFO head
//   * per-output wormhole ownership: a head flit that wins an output port
//     holds it until its tail flit passes (packets never interleave)
//   * round-robin arbitration among competing head flits per output
//   * credit-based flow control toward downstream FIFOs (managed by the
//     Fabric, which owns the credit counters for all directed links)
//
// The router itself is deliberately passive: it *plans* at most one flit
// move per output port from a consistent pre-cycle snapshot, and the Fabric
// commits all planned moves afterwards. This two-phase split is what makes
// the simulation order-independent and cycle-accurate.
//
// NOTE: this per-object Router (deque FIFOs, per-instance wormhole state)
// is the seed implementation and now backs only the ReferenceFabric oracle
// in noc/reference_fabric.{hpp,cpp}. The production Fabric in
// noc/fabric.{hpp,cpp} inlines the identical arbitration loop over flat
// per-fabric arrays (one flit arena, flat credit/owner/round-robin state);
// PlannedMove below is shared by both engines. Keep this file's behavior
// frozen — the flat engine is tested bit-for-bit against it.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "floorplan/grid.hpp"
#include "noc/flit.hpp"
#include "noc/routing.hpp"

namespace renoc {

/// A flit transfer decided during arbitration, committed by the Fabric.
struct PlannedMove {
  int node = 0;        ///< router making the move
  int in_port = 0;     ///< source input FIFO (Direction as int)
  Direction out = Direction::kLocal;
};

class Router {
 public:
  Router(int node, const GridDim& dim, int buffer_depth);

  int node() const { return node_; }
  const GridCoord& coord() const { return coord_; }

  /// Free slots in the input FIFO for `port`.
  int fifo_space(int port) const;
  bool fifo_empty(int port) const;
  int fifo_occupancy(int port) const;

  /// Appends a flit to an input FIFO. Checked against capacity — credit
  /// flow control upstream must make overflow impossible.
  void push(int port, const Flit& flit);

  /// Pops the head flit of an input FIFO (must be non-empty).
  Flit pop(int port);

  /// Plans this cycle's moves given per-output credit availability
  /// (credit_ok[d] true if the downstream FIFO in direction d can accept a
  /// flit; the local/ejection port is always available). Appends to `out`.
  /// Returns the number of new output-port allocations (arbitration events).
  int arbitrate(const bool credit_ok[kDirectionCount],
                std::vector<PlannedMove>& out);

  /// Marks the wormhole ownership of `out_port` released (tail committed).
  void release_output(Direction out_port);

  /// True if every FIFO is empty and no output is owned.
  bool quiescent() const;

  /// Total flits buffered in all input FIFOs.
  int buffered_flits() const;

 private:
  int node_;
  GridDim dim_;
  GridCoord coord_;
  int buffer_depth_;
  std::deque<Flit> fifo_[kDirectionCount];
  int owner_input_[kDirectionCount];       // -1 = free
  PacketId owner_packet_[kDirectionCount];
  int rr_pointer_[kDirectionCount];
};

}  // namespace renoc
