// Multithreaded NoC scenario-sweep harness.
//
// Latency/throughput characterization over a grid of {traffic pattern,
// mesh size, injection rate, message length} scenarios, spread over
// std::thread workers. Mirrors ldpc/ber_harness's determinism design:
//
//   - every scenario gets its own RNG stream, derived statelessly from
//     (config seed, scenario index) by a SplitMix64 chain — never from the
//     worker that happens to run it;
//   - workers pull scenario indices from a shared atomic cursor and each
//     scenario is simulated end to end by exactly one worker, writing its
//     SweepPoint into a preassigned slot;
//   - no cross-scenario state exists, so the result vector is bit-identical
//     for any thread count, and any single scenario can be replayed in
//     isolation with run_noc_scenario().
//
// Methodology per scenario: warm up, clear the stats, measure for a fixed
// window, then drain so every measured packet's latency is recorded.
// Offered load is reported both including and excluding pattern fixed-point
// skips (see TrafficGenerator::messages_skipped) so measured offered load
// can be checked against the configured rate.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/fabric.hpp"
#include "noc/fault_model.hpp"
#include "noc/traffic.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"

namespace renoc {

/// Sentinel retry budget: leave the fabric pristine (no delivery guard, no
/// degraded mode). The default fault axes are {count 0} x {kLinkDead} x
/// {kGuardDisabled}, so a config that never mentions faults enumerates the
/// exact same scenario grid — same indices, same RNG streams, same results
/// — as before the fault axes existed.
inline constexpr int kGuardDisabled = -1;

/// One point of the sweep grid.
struct SweepScenario {
  TrafficPattern pattern = TrafficPattern::kUniformRandom;
  GridDim dim{4, 4};
  double injection_rate = 0.1;  ///< flits/node/cycle
  int message_words = 4;
  BurstParams burst{};
  int hotspot = 0;
  // Degraded-fabric axes. fault_count > 0 installs a fault plan derived
  // from fault_scenario_rng(seed, scenario_index) — O(1) replayable, like
  // the traffic stream. retry_budget >= 0 configures the delivery guard.
  int fault_count = 0;
  FaultKind fault_kind = FaultKind::kLinkDead;
  int retry_budget = kGuardDisabled;
};

struct SweepConfig {
  std::vector<TrafficPattern> patterns = {TrafficPattern::kUniformRandom};
  std::vector<int> mesh_sides = {4};          ///< square meshes, side length
  std::vector<double> injection_rates = {0.1};
  std::vector<int> message_words = {4};
  // Degraded-fabric axes, appended INNERMOST in scenarios() so the default
  // size-1 axes keep every pre-existing scenario index (and stream) stable.
  std::vector<int> fault_counts = {0};
  std::vector<FaultKind> fault_kinds = {FaultKind::kLinkDead};
  std::vector<int> retry_budgets = {kGuardDisabled};
  BurstParams burst{};       ///< applied to every scenario
  int buffer_depth = 4;
  int warmup_cycles = 500;
  int measure_cycles = 2000;
  int drain_max_cycles = 2'000'000;
  int threads = 1;           ///< worker thread count (>= 1)
  std::uint64_t seed = 1;    ///< master seed for all per-scenario streams

  void validate() const;

  /// The scenario grid in its fixed enumeration order (pattern-major, then
  /// mesh side, injection rate, message length, fault count, fault kind,
  /// retry budget). Index i here is the scenario index fed to
  /// sweep_scenario_rng and fault_scenario_rng.
  std::vector<SweepScenario> scenarios() const;
};

/// Measured results for one scenario.
struct SweepPoint {
  SweepScenario scenario;
  int scenario_index = 0;

  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;  ///< incl. drain-phase deliveries
  std::uint64_t messages_skipped = 0;   ///< pattern fixed-point draws
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_delivered = 0;

  double offered_flit_rate = 0.0;   ///< incl. skips — tracks the config rate
  double injected_flit_rate = 0.0;  ///< offered minus skips
  /// Flits that *arrived within the measure window*, per node per cycle.
  /// Drain-phase arrivals are excluded so a saturated mesh shows
  /// accepted < offered (they still feed the latency stats below).
  double accepted_flit_rate = 0.0;

  double avg_latency_cycles = 0.0;  ///< head injection to tail ejection
  double max_latency_cycles = 0.0;
  std::uint64_t cycles = 0;         ///< measure + drain cycles simulated

  // Delivery-guarantee counters (NocStats), measure window + drain. All
  // zero for pristine scenarios; on a degraded fabric every message the NI
  // accepted resolves as exactly one of delivered/dropped/unreachable.
  std::uint64_t packets_retried = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_unreachable = 0;
  std::uint64_t duplicates_suppressed = 0;
  int route_epochs = 0;  ///< topology-change epochs over the whole run
};

/// Runs the sweep; returns one SweepPoint per scenario in scenarios()
/// order, independent of cfg.threads.
std::vector<SweepPoint> run_noc_sweep(const SweepConfig& cfg);

/// The RNG stream scenario `scenario_index` uses — exposed so tests and
/// examples can replay the exact simulation a sweep measured. O(1): the
/// stream seed is a stateless mix of the two coordinates.
Rng sweep_scenario_rng(std::uint64_t seed, int scenario_index);

/// Simulates one scenario exactly as the sweep would (same RNG stream,
/// same warm-up/measure/drain schedule). run_noc_sweep(cfg)[i] ==
/// run_noc_scenario(cfg.scenarios()[i], cfg, i) for every i.
SweepPoint run_noc_scenario(const SweepScenario& scenario,
                            const SweepConfig& cfg, int scenario_index);

/// Sweep-service spec for the same sweep: one scenario per grid cell in
/// scenarios() order, 16-word records (counts raw, rates/latencies as
/// pack_double bit patterns). Results are bit-identical to
/// run_noc_sweep's for any shard split or resume schedule. `cfg` must
/// outlive the spec.
sweep::SweepSpec make_noc_sweep_spec(const SweepConfig& cfg);

/// Decodes a kCompleted service record back into the SweepPoint
/// run_noc_sweep would have produced for that scenario.
SweepPoint noc_point_from_record(const SweepScenario& scenario,
                                 const sweep::ScenarioRecord& rec);

}  // namespace renoc
