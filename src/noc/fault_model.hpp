// Deterministic fault plans for degraded-fabric NoC runs.
//
// A FaultPlan is a fixed, replayable schedule of topology changes: mesh
// links or whole routers killed at given cycles, plus transient "flaky
// link" windows (a link goes down at one cycle and recovers at a later
// one). Plans are generated statelessly from a seed — the same
// (seed, scenario) pair always yields the same plan, on any thread, in any
// order — which is what lets the fault axes of noc/sweep_harness keep the
// bit-identical-for-any-thread-count and O(1) single-scenario replay
// contracts of the zero-fault sweep.
//
// The plan is pure data. The Fabric consumes it via install_fault_plan():
// at each event cycle it applies the change, rebuilds the adaptive route
// tables (outside the hot regions), and purges packets the change strands
// — every purged packet is recorded in NocStats, never silently lost.
#pragma once

#include <cstdint>
#include <vector>

#include "floorplan/grid.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace renoc {

/// Fault families a plan can inject (the sweep's fault_kind axis).
enum class FaultKind : std::uint8_t {
  kLinkDead = 0,    ///< unidirectional mesh links killed permanently
  kRouterDead = 1,  ///< whole routers (and all their links) killed
  kLinkFlaky = 2,   ///< links down for a bounded window, then recovered
};

const char* to_string(FaultKind k);

/// One atomic topology change. Flaky-link faults expand into a kLinkDown /
/// kLinkUp pair so the fabric only ever sees monotone per-event changes.
struct FaultEvent {
  enum class Kind : std::uint8_t { kLinkDown = 0, kLinkUp = 1, kRouterDown = 2 };
  Kind kind = Kind::kLinkDown;
  Cycle cycle = 0;  ///< applied at the start of this cycle
  int node = 0;     ///< link source node, or the dying router
  int port = 0;     ///< mesh output direction 0..3 (unused for routers)
};

/// Generation parameters for make_fault_plan.
struct FaultSpec {
  FaultKind kind = FaultKind::kLinkDead;
  int count = 0;            ///< faults to inject (distinct victims)
  Cycle onset_min = 0;      ///< fault cycles drawn uniformly in
  Cycle onset_max = 1000;   ///<   [onset_min, onset_max]
  Cycle flake_min = 100;    ///< flaky-window length drawn uniformly in
  Cycle flake_max = 400;    ///<   [flake_min, flake_max]

  void validate(const GridDim& dim) const;
};

/// A replayable schedule of topology changes, sorted by (cycle, kind,
/// node, port) so application order is total and deterministic.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  /// Cycle of the last event (0 for an empty plan) — benches place their
  /// steady-state allocation window after this.
  Cycle last_event_cycle() const;
};

/// Generates the plan for `spec` on a `dim` mesh by drawing victims and
/// cycles from `rng`. Victims are sampled without replacement over the
/// unidirectional mesh links (or routers); a given link/router appears in
/// at most one fault.
FaultPlan make_fault_plan(const GridDim& dim, const FaultSpec& spec, Rng rng);

/// The RNG stream a sweep scenario's fault plan draws from. Salted so the
/// fault stream never collides with the scenario's traffic stream
/// (sweep_scenario_rng) for any (seed, index) pair; stateless, so any
/// scenario's plan is reachable in O(1).
Rng fault_scenario_rng(std::uint64_t seed, int scenario_index);

}  // namespace renoc
