#include "noc/fabric.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace renoc {

namespace {

constexpr int kLocal = static_cast<int>(Direction::kLocal);

// opposite() as a table over the four mesh directions (N<->S, E<->W); the
// commit loop runs it per flit hop.
constexpr int kOppositeDir[4] = {1, 0, 3, 2};

// Payload buffers kept for reuse; beyond this the pool just frees. High
// enough that real workloads never hit it, low enough to bound memory if a
// caller recycles far more than it sends.
constexpr std::size_t kPayloadPoolCap = 16384;

}  // namespace

void NocConfig::validate() const {
  RENOC_CHECK_MSG(dim.width >= 2 && dim.height >= 2,
                  "mesh must be at least 2x2, got " << to_string(dim));
  RENOC_CHECK(buffer_depth >= 1);
  RENOC_CHECK(clock_hz > 0);
}

void DeliveryGuardConfig::validate() const {
  RENOC_CHECK_MSG(retry_budget >= 0,
                  "retry budget must be >= 0, got " << retry_budget);
  RENOC_CHECK(timeout_cycles >= 1);
  RENOC_CHECK(backoff_shift_cap >= 0 && backoff_shift_cap < 32);
}

void Fabric::MessageRing::grow() {
  std::vector<Message> bigger(buf.empty() ? 4 : buf.size() * 2);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t src = head + i;
    if (src >= buf.size()) src -= buf.size();
    bigger[i] = std::move(buf[src]);
  }
  buf = std::move(bigger);
  head = 0;
}

Fabric::Fabric(const NocConfig& config)
    : config_(config), stats_(config.dim.node_count()) {
  config_.validate();
  depth_ = config_.buffer_depth;
  const int n = node_count();
  const std::size_t nodes = static_cast<std::size_t>(n);
  const std::size_t ports = nodes * kDirectionCount;

  arena_.resize(ports * static_cast<std::size_t>(depth_));
  fifo_head_.assign(ports, 0);
  fifo_size_.assign(ports, 0);
  head_packet_.assign(ports, 0);
  head_dst_.assign(ports, 0);
  head_is_head_.assign(ports, 0);
  credits_.assign(nodes * 4, depth_);
  owner_input_.assign(ports, -1);
  owner_packet_.assign(ports, 0);
  rr_pointer_.assign(ports, 0);
  node_buffered_.assign(nodes, 0);
  nis_.resize(nodes);
  slots_.resize(nodes * nodes);
  payload_pool_.reserve(256);
  planned_.reserve(ports);  // hard cap: one move per output port per cycle

  // Topology tables: downstream node per mesh output, and the XY-routing
  // decision for every (here, dst) pair. Both replace per-flit coordinate
  // arithmetic in the hot loops with a single indexed load. The XY table
  // carries kRouteTablePad tail bytes for the SIMD gather overread; only
  // the first nodes*nodes entries are ever addressed.
  neighbor_node_.assign(nodes * 4, -1);
  route_table_.assign(nodes * nodes + kRouteTablePad,
                      static_cast<std::uint8_t>(kLocal));
  for (int node = 0; node < n; ++node) {
    const GridCoord here = index_to_coord(node, config_.dim);
    for (int d = 0; d < 4; ++d) {
      const GridCoord nb = neighbor(here, static_cast<Direction>(d));
      if (in_bounds(nb, config_.dim))
        neighbor_node_[static_cast<std::size_t>(node) * 4 +
                       static_cast<std::size_t>(d)] =
            coord_to_index(nb, config_.dim);
    }
    for (int dst = 0; dst < n; ++dst)
      route_table_[static_cast<std::size_t>(node) * nodes +
                   static_cast<std::size_t>(dst)] =
          static_cast<std::uint8_t>(
              xy_route(here, index_to_coord(dst, config_.dim)));
  }

  // SIMD arbitration prepass: active only on a vector tier (the scalar
  // table's per-node inline computation below is already optimal, and
  // keeping it null there leaves scalar builds byte-identical in behavior
  // and perf). Pad ports are zeroed mirrors — they scan as want -1 and
  // index row 0 of whichever table is live.
  const simd::KernelTable& active = simd::kernels();
  if (active.tier != simd::Tier::kScalar) want_kernels_ = &active;
  ports_padded_ = static_cast<int>((ports + 7) / 8 * 8);
  const std::size_t padded = static_cast<std::size_t>(ports_padded_);
  want_scan_.assign(padded, 0);
  want_base_xy_.assign(padded, 0);
  want_base_adaptive_.assign(padded, 0);
  for (std::size_t f = 0; f < ports; ++f) {
    want_base_xy_[f] =
        static_cast<int>(f / kDirectionCount) * n;  // node * nodes
    want_base_adaptive_[f] = static_cast<int>(f) * n;
  }
}

void Fabric::push_flit(int node, int port, const Flit& flit) {
  // renoc-hot-begin (once per link traversal, every cycle)
  const std::size_t f = port_index(node, port);
  RENOC_CHECK_MSG(fifo_size_[f] < depth_, "FIFO overflow at node "
                                              << node << " port " << port
                                              << " — credit protocol violated");
  // Conditional wrap, not %: depth_ is a runtime value, so modulo would
  // cost an integer division on every ring operation.
  int slot = fifo_head_[f] + fifo_size_[f];
  if (slot >= depth_) slot -= depth_;
  arena_[f * static_cast<std::size_t>(depth_) +
         static_cast<std::size_t>(slot)] = flit;
  if (++fifo_size_[f] == 1) refresh_head(f);
  ++node_buffered_[static_cast<std::size_t>(node)];
  ++buffered_flits_;
  // renoc-hot-end
}

/// Advances FIFO f past its front flit (caller has already consumed it).
void Fabric::pop_front(int node, std::size_t f) {
  // renoc-hot-begin (once per forwarded flit, every cycle)
  if (++fifo_head_[f] == depth_) fifo_head_[f] = 0;
  if (--fifo_size_[f] > 0) refresh_head(f);
  --node_buffered_[static_cast<std::size_t>(node)];
  --buffered_flits_;
  // renoc-hot-end
}

void Fabric::send(const Message& msg) {
  send(Message(msg));
}

void Fabric::send(Message&& msg) {
  RENOC_CHECK_MSG(msg.src >= 0 && msg.src < node_count(),
                  "bad src " << msg.src);
  RENOC_CHECK_MSG(msg.dst >= 0 && msg.dst < node_count(),
                  "bad dst " << msg.dst);
  // A dead source PE cannot inject; refusing here (with a drop record)
  // keeps the conservation law exact — a queued message at a dead NI would
  // otherwise pin idle() false forever.
  if (degraded_ && router_up_[static_cast<std::size_t>(msg.src)] == 0) {
    stats_.note_packet_dropped();
    recycle(std::move(msg));
    return;
  }
  nis_[static_cast<std::size_t>(msg.src)].send_queue.push(std::move(msg));
}

std::optional<Message> Fabric::try_receive(int node) {
  RENOC_CHECK(node >= 0 && node < node_count());
  auto& ni = nis_[static_cast<std::size_t>(node)];
  if (ni.delivered.empty()) return std::nullopt;
  return ni.delivered.pop();
}

void Fabric::recycle(Message&& msg) {
  if (payload_pool_.size() >= kPayloadPoolCap) return;
  msg.payload.clear();
  payload_pool_.push_back(std::move(msg.payload));
}

Message Fabric::acquire_message() {
  Message m;
  if (!payload_pool_.empty()) {
    m.payload = std::move(payload_pool_.back());
    payload_pool_.pop_back();
    m.payload.clear();
  }
  return m;
}

int Fabric::delivered_count(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  return static_cast<int>(
      nis_[static_cast<std::size_t>(node)].delivered.size());
}

void Fabric::build_staged_flits(NetworkInterface& ni, const Message& msg,
                                PacketId pid, std::uint32_t msg_seq) {
  const int nflits = msg.flit_count();
  ni.staged_flits.clear();
  ni.staged_pos = 0;
  ni.staged_flits.reserve(static_cast<std::size_t>(nflits));
  for (int i = 0; i < nflits; ++i) {
    Flit f;
    f.packet = pid;
    f.src = msg.src;
    f.dst = msg.dst;
    f.seq = static_cast<std::uint32_t>(i);
    f.payload = msg.payload.empty() ? 0
                                    : msg.payload[static_cast<std::size_t>(i)];
    f.tag = msg.tag;
    f.injected_at = now_;
    f.pkt_flits = static_cast<std::uint32_t>(nflits);
    f.msg_seq = msg_seq;
    if (nflits == 1) {
      f.type = FlitType::kHeadTail;
    } else if (i == 0) {
      f.type = FlitType::kHead;
    } else if (i == nflits - 1) {
      f.type = FlitType::kTail;
    } else {
      f.type = FlitType::kBody;
    }
    ni.staged_flits.push_back(f);
  }
}

void Fabric::stage_next_message(int node) {
  auto& ni = nis_[static_cast<std::size_t>(node)];
  if (ni.send_queue.empty()) return;
  Message msg = ni.send_queue.pop();
  build_staged_flits(ni, msg, next_packet_id_++, ++ni.next_msg_seq);
  // The staged message's payload buffer goes back to the pool so the next
  // acquire_message()/reassembly can reuse it.
  recycle(std::move(msg));
}

void Fabric::eject_flit(int node, const Flit& flit) {
  // renoc-hot-begin (once per flit reaching its destination)
  ++stats_.tile(node).ejected_flits;
  if (degraded_) note_flit_left_network(flit);
  const std::size_t nodes = static_cast<std::size_t>(node_count());
  ReassemblySlot& slot =
      slots_[static_cast<std::size_t>(node) * nodes +
             static_cast<std::size_t>(flit.src)];
  if (flit.is_head()) {
    // Wormhole ownership of every traversed port plus FIFO links means a
    // (src, dst) pair never has two packets interleaved at ejection; in
    // degraded mode the stop-and-wait tracker enforces the same bound.
    RENOC_CHECK_MSG(slot.flits == 0 && !slot.discarding,
                    "reassembly slot busy for src " << flit.src << " at node "
                                                    << node);
    slot.pid = flit.packet;
    if (degraded_ && flit.msg_seq != 0 &&
        flit.msg_seq <= slot.last_seq_delivered) {
      // Retransmission duplicate: the original was delivered, but its
      // delivery notice was still in flight when the source's timeout
      // fired. Swallow the whole packet; count it at the tail.
      slot.discarding = true;
    } else {
      slot.msg.src = flit.src;
      slot.msg.dst = flit.dst;
      slot.msg.tag = flit.tag;
      slot.head_injected_at = flit.injected_at;
      // Reserve the whole payload up front from the head flit's packet
      // length, pulling capacity from the recycling pool when the slot's
      // own buffer (moved out with the previous delivery) is too small.
      if (slot.msg.payload.capacity() < flit.pkt_flits &&
          !payload_pool_.empty()) {
        slot.msg.payload.swap(payload_pool_.back());
        payload_pool_.pop_back();
      }
      slot.msg.payload.clear();
      // renoc-lint-allow(hot-alloc): head-flit reserve reusing pooled capacity
      slot.msg.payload.reserve(flit.pkt_flits);
      ++partial_count_;
    }
  }
  if (slot.discarding) {
    if (flit.is_tail()) {
      stats_.note_duplicate_suppressed();
      slot.discarding = false;
      slot.pid = 0;
    }
  } else {
    // renoc-lint-allow(hot-alloc): within the capacity reserved at the head
    slot.msg.payload.push_back(flit.payload);
    ++slot.flits;
    if (flit.is_tail()) {
      // A message sent with an empty payload occupies one flit and is
      // delivered with a single zero word (the wire cannot distinguish the
      // two; see Message::flit_count).
      stats_.note_packet_delivered(slot.flits, now_ - slot.head_injected_at);
      nis_[static_cast<std::size_t>(node)].delivered.push(std::move(slot.msg));
      slot.flits = 0;
      slot.pid = 0;
      --partial_count_;
      if (degraded_) {
        slot.last_seq_delivered = flit.msg_seq;
        // Delivery notice toward the source: the tracker resolves once the
        // notice lands (ack_latency_cycles later). Keyed by msg_seq, not
        // PacketId — the delivering attempt may be older than the tracked
        // one when a retransmission is already in flight.
        auto& sni = nis_[static_cast<std::size_t>(flit.src)];
        if (sni.tracked_active && sni.tracked_seq == flit.msg_seq &&
            sni.tracked_ack_at == kNoAck)
          sni.tracked_ack_at = now_ + guard_.ack_latency_cycles;
      }
    }
  }
  // renoc-hot-end
}

void Fabric::step() {
  ++now_;
  // Topology-change epochs: fault events due this cycle apply now, bump
  // the route epoch, rebuild the adaptive tables, and purge stranded
  // packets — all before (outside) the annotated hot region below.
  if (degraded_ && next_fault_ < fault_events_.size() &&
      fault_events_[next_fault_].cycle <= now_)
    apply_due_faults();
  const int n_nodes = node_count();
  const std::size_t nodes = static_cast<std::size_t>(n_nodes);
  // Epoch-versioned table selection, hoisted out of the scan: the adaptive
  // pointer only ever changes at an epoch boundary above, never mid-cycle.
  const bool adaptive = adaptive_active_;
  const std::uint8_t* const adaptive_routes =
      adaptive ? adaptive_table_.data() : nullptr;
  // Contiguous tile counters, hoisted past tile()'s per-call bounds check
  // (every index below is a valid node).
  TileActivity* const tiles = &stats_.tile(0);

  // --- Phase 1: arbitration over the pre-cycle state --------------------
  // Same decision procedure as Router::arbitrate in the reference engine,
  // inlined over the flat arrays: wormhole continuation first, then
  // round-robin output allocation among buffered head flits.
  // renoc-hot-begin (phases 1+2 run every cycle over every router)
  planned_.clear();
  // SIMD want[]-prepass: on a vector tier with any flit buffered, one
  // kernel call scans every port's head-flit mirrors at once; each node's
  // loop below then reads its slice instead of computing inline. Semantics
  // are identical to the inline fallback (bit-exact masks, same tables).
  const bool scanned = want_kernels_ != nullptr && buffered_flits_ > 0;
  if (scanned) {
    want_kernels_->noc_want_scan(
        fifo_size_.data(), head_is_head_.data(), head_dst_.data(),
        adaptive ? want_base_adaptive_.data() : want_base_xy_.data(),
        adaptive ? adaptive_routes : route_table_.data(), ports_padded_,
        want_scan_.data());
  }
  for (int n = 0; n < n_nodes; ++n) {
    // A router with no buffered flit can plan nothing: continuations stall
    // on empty FIFOs and allocations need a head flit. (The reference
    // arbitrates such routers too, with zero planned moves and a zero
    // arbitration count — no observable difference.)
    if (node_buffered_[static_cast<std::size_t>(n)] == 0) continue;

    const std::size_t base = static_cast<std::size_t>(n) * kDirectionCount;
    const std::size_t credit_base = static_cast<std::size_t>(n) * 4;
    const std::size_t route_base = static_cast<std::size_t>(n) * nodes;
    // Input-major pre-pass: each input's desired output (head flit at the
    // front, routed via the table) is computed once, instead of once per
    // candidate output in the round-robin scans below. The zero-fault fast
    // path reads the XY table; after the first topology-change epoch the
    // per-input west-first table takes over (input port encodes the travel
    // direction the turn restriction needs). An unreachable head parks
    // (want -1) — purge removes such heads at the epoch that strands them,
    // so nothing spins here.
    int want_local[kDirectionCount];
    const int* want;
    if (scanned) {
      want = want_scan_.data() + base;
    } else {
      for (int in = 0; in < kDirectionCount; ++in) {
        const std::size_t f = base + static_cast<std::size_t>(in);
        if (fifo_size_[f] > 0 && head_is_head_[f] != 0) {
          const std::uint8_t out =
              adaptive
                  ? adaptive_routes[(base + static_cast<std::size_t>(in)) *
                                        nodes +
                                    static_cast<std::size_t>(head_dst_[f])]
                  : route_table_[route_base +
                                 static_cast<std::size_t>(head_dst_[f])];
          want_local[in] = out == kUnreachableRoute ? -1 : static_cast<int>(out);
        } else {
          want_local[in] = -1;
        }
      }
      want = want_local;
    }
    int new_allocations = 0;
    for (int o = 0; o < kDirectionCount; ++o) {
      const bool credit_ok =
          o == kLocal /* ideal ejection */ ||
          credits_[credit_base + static_cast<std::size_t>(o)] > 0;
      const std::size_t out = base + static_cast<std::size_t>(o);
      const int owner = owner_input_[out];
      if (owner >= 0) {
        // Wormhole continuation: move the next flit of the owning packet
        // if it has arrived and the downstream FIFO can take it.
        const std::size_t f = base + static_cast<std::size_t>(owner);
        if (fifo_size_[f] > 0 && head_packet_[f] == owner_packet_[out] &&
            credit_ok)
          // renoc-lint-allow(hot-alloc): worst case reserved in the ctor
          planned_.push_back(
              PlannedMove{n, owner, static_cast<Direction>(o)});
        continue;
      }
      if (!credit_ok) continue;
      // Round-robin over inputs looking for a head flit routed here.
      const int rr = rr_pointer_[out];
      for (int k = 1; k <= kDirectionCount; ++k) {
        int in = rr + k;
        if (in >= kDirectionCount) in -= kDirectionCount;
        if (want[in] != o) continue;
        // renoc-lint-allow(hot-alloc): worst case reserved in the ctor
        planned_.push_back(PlannedMove{n, in, static_cast<Direction>(o)});
        owner_input_[out] = static_cast<std::int8_t>(in);
        owner_packet_[out] = head_packet_[base + static_cast<std::size_t>(in)];
        rr_pointer_[out] = static_cast<std::int8_t>(in);
        ++new_allocations;
        break;
      }
    }
    tiles[n].arbitrations += static_cast<std::uint64_t>(new_allocations);
  }

  // --- Phase 2: commit all planned moves --------------------------------
  for (const PlannedMove& mv : planned_) {
    const int n = mv.node;
    const std::size_t f = port_index(n, mv.in_port);
    // The flit moves arena-to-arena (or arena-to-reassembly) in one copy:
    // consume it in place, then advance the source ring.
    const Flit& flit = fifo_front(f);
    const bool tail = flit.is_tail();
    TileActivity& act = tiles[n];
    ++act.buffer_reads;
    ++act.crossbar_traversals;

    // Credit return toward the upstream router (not for local injection).
    if (mv.in_port != kLocal) {
      const int up = neighbor_node_[static_cast<std::size_t>(n) * 4 +
                                    static_cast<std::size_t>(mv.in_port)];
      ++credits_[static_cast<std::size_t>(up) * 4 +
                 static_cast<std::size_t>(kOppositeDir[mv.in_port])];
    }

    const int o = static_cast<int>(mv.out);
    if (mv.out == Direction::kLocal) {
      eject_flit(n, flit);
    } else {
      const int down = neighbor_node_[static_cast<std::size_t>(n) * 4 +
                                      static_cast<std::size_t>(o)];
      push_flit(down, kOppositeDir[o], flit);
      ++tiles[down].buffer_writes;
      ++act.link_flits;
      --credits_[static_cast<std::size_t>(n) * 4 +
                 static_cast<std::size_t>(o)];
    }
    pop_front(n, f);
    if (tail) {
      const std::size_t out = port_index(n, o);
      owner_input_[out] = -1;
      owner_packet_[out] = 0;
    }
  }
  // renoc-hot-end

  // --- Phase 3: injection ------------------------------------------------
  inject_phase();
}

void Fabric::inject_phase() {
  // renoc-hot-begin (phase 3 runs every cycle over every NI)
  for (int n = 0; n < node_count(); ++n) {
    auto& ni = nis_[static_cast<std::size_t>(n)];
    if (degraded_) {
      // The delivery guard is NI hardware: timeouts, retransmissions and
      // notice handling keep running while the PE is halted —
      // set_injection_enabled gates only the admission of NEW messages
      // (inside guard_tick), and a wormhole packet cannot be stopped
      // mid-injection without wedging its grants downstream.
      if (router_up_[static_cast<std::size_t>(n)] == 0) continue;
      guard_tick(n, ni);
    } else if (!ni.enabled) {
      continue;
    } else if (ni.staged_pos >= ni.staged_flits.size()) {
      stage_next_message(n);
    }
    if (ni.staged_pos >= ni.staged_flits.size()) continue;
    if (fifo_size_[port_index(n, kLocal)] >= depth_) continue;
    push_flit(n, kLocal, ni.staged_flits[ni.staged_pos++]);
    if (degraded_) ++ni.tracked_flits_in_net;
    TileActivity& act = stats_.tile(n);
    ++act.injected_flits;
    ++act.buffer_writes;
  }
  // renoc-hot-end
}

void Fabric::run(int n) {
  RENOC_CHECK(n >= 0);
  for (int i = 0; i < n; ++i) step();
}

int Fabric::drain(int max_cycles) {
  for (int i = 0; i < max_cycles; ++i) {
    if (idle()) return i;
    step();
  }
  RENOC_CHECK_MSG(idle(), "network failed to drain in " << max_cycles
                                                        << " cycles");
  return max_cycles;
}

bool Fabric::idle() const {
  // No buffered flit also implies no wormhole grant can be pending (a held
  // grant means a tail flit is still staged or buffered somewhere), and no
  // active reassembly (its tail would be in flight) — so these two counters
  // plus the NI queues cover the reference engine's full quiescence check.
  if (buffered_flits_ != 0 || partial_count_ != 0) return false;
  for (const auto& ni : nis_) {
    if (!ni.send_queue.empty()) return false;
    if (ni.staged_pos < ni.staged_flits.size()) return false;
    // A tracked message awaiting its delivery notice, a timeout, or a
    // retransmission still owns future work.
    if (degraded_ && ni.tracked_active) return false;
  }
  return true;
}

void Fabric::set_injection_enabled(int node, bool enabled) {
  RENOC_CHECK(node >= 0 && node < node_count());
  nis_[static_cast<std::size_t>(node)].enabled = enabled;
}

bool Fabric::injection_enabled(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  return nis_[static_cast<std::size_t>(node)].enabled;
}

int Fabric::pending_send_count(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  const auto& ni = nis_[static_cast<std::size_t>(node)];
  const int staged_left = ni.staged_pos < ni.staged_flits.size() ? 1 : 0;
  return static_cast<int>(ni.send_queue.size()) + staged_left;
}

// --- Degraded-fabric mode ---------------------------------------------------

void Fabric::enter_degraded_mode() {
  if (degraded_) return;
  degraded_ = true;
  const std::size_t nodes = static_cast<std::size_t>(node_count());
  router_up_.assign(nodes, 1);
  link_up_.assign(nodes * 4, 0);
  for (std::size_t l = 0; l < nodes * 4; ++l)
    if (neighbor_node_[l] >= 0) link_up_[l] = 1;
  doomed_.reserve(64);
}

void Fabric::install_fault_plan(const FaultPlan& plan) {
  RENOC_CHECK_MSG(idle(), "install a fault plan on an idle fabric");
  for (const FaultEvent& e : plan.events) {
    RENOC_CHECK_MSG(e.node >= 0 && e.node < node_count(),
                    "fault event names node " << e.node);
    if (e.kind != FaultEvent::Kind::kRouterDown)
      RENOC_CHECK_MSG(e.port >= 0 && e.port < 4,
                      "link fault names port " << e.port);
  }
  fault_events_ = plan.events;
  next_fault_ = 0;
  enter_degraded_mode();
}

void Fabric::configure_delivery_guard(const DeliveryGuardConfig& cfg) {
  cfg.validate();
  RENOC_CHECK_MSG(idle(), "configure the delivery guard on an idle fabric");
  guard_ = cfg;
  enter_degraded_mode();
}

bool Fabric::router_alive(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  return !degraded_ || router_up_[static_cast<std::size_t>(node)] != 0;
}

bool Fabric::link_alive(int node, int dir) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  RENOC_CHECK(dir >= 0 && dir < 4);
  const std::size_t l =
      static_cast<std::size_t>(node) * 4 + static_cast<std::size_t>(dir);
  if (!degraded_) return neighbor_node_[l] >= 0;
  return link_up_[l] != 0;
}

bool Fabric::destination_reachable(int src, int dst) const {
  RENOC_CHECK(src >= 0 && src < node_count());
  RENOC_CHECK(dst >= 0 && dst < node_count());
  if (!degraded_) return true;
  if (router_up_[static_cast<std::size_t>(src)] == 0 ||
      router_up_[static_cast<std::size_t>(dst)] == 0)
    return false;
  if (!adaptive_active_) return true;
  const std::size_t nodes = static_cast<std::size_t>(node_count());
  return adaptive_table_[(static_cast<std::size_t>(src) * kDirectionCount +
                          static_cast<std::size_t>(kLocal)) *
                             nodes +
                         static_cast<std::size_t>(dst)] != kUnreachableRoute;
}

void Fabric::apply_due_faults() {
  bool changed = false;
  while (next_fault_ < fault_events_.size() &&
         fault_events_[next_fault_].cycle <= now_) {
    const FaultEvent& e = fault_events_[next_fault_++];
    const std::size_t n = static_cast<std::size_t>(e.node);
    switch (e.kind) {
      case FaultEvent::Kind::kLinkDown: {
        const std::size_t l = n * 4 + static_cast<std::size_t>(e.port);
        if (neighbor_node_[l] >= 0 && link_up_[l] != 0) {
          link_up_[l] = 0;
          changed = true;
        }
        break;
      }
      case FaultEvent::Kind::kLinkUp: {
        const std::size_t l = n * 4 + static_cast<std::size_t>(e.port);
        const int down = neighbor_node_[l];
        // A flaky link never recovers past a dead endpoint.
        if (down >= 0 && link_up_[l] == 0 && router_up_[n] != 0 &&
            router_up_[static_cast<std::size_t>(down)] != 0) {
          link_up_[l] = 1;
          changed = true;
        }
        break;
      }
      case FaultEvent::Kind::kRouterDown: {
        if (router_up_[n] == 0) break;
        router_up_[n] = 0;
        // A dead router takes all eight adjacent unidirectional links
        // with it (its four outputs and the neighbors' links toward it).
        for (int d = 0; d < 4; ++d) {
          const std::size_t l = n * 4 + static_cast<std::size_t>(d);
          link_up_[l] = 0;
          const int m = neighbor_node_[l];
          if (m >= 0)
            link_up_[static_cast<std::size_t>(m) * 4 +
                     static_cast<std::size_t>(kOppositeDir[d])] = 0;
        }
        changed = true;
        break;
      }
    }
  }
  if (!changed) return;
  // One route epoch per applied batch: rebuild the west-first tables over
  // the surviving topology, then purge what the change stranded. Both are
  // cold-path operations, deliberately outside every renoc-hot region.
  ++route_epoch_;
  adaptive_active_ = true;
  build_adaptive_routes(config_.dim, link_up_, router_up_, adaptive_table_);
  // Re-pad after every rebuild (build_adaptive_routes assigns the exact
  // size): the SIMD want-scan's gather may overread up to kRouteTablePad
  // bytes past the last entry.
  adaptive_table_.resize(adaptive_table_.size() + kRouteTablePad, 0);
  purge_stranded_packets();
}

void Fabric::purge_stranded_packets() {
  const int n_nodes = node_count();
  const std::size_t nodes = static_cast<std::size_t>(n_nodes);
  doomed_.clear();

  // Pass A: collect doomed packets — every flit buffered in a dead router,
  // every wormhole grant crossing a dead link (the packet's remaining
  // flits can never follow their head), every buffered head whose
  // destination is unreachable from where it sits under the new tables,
  // and every reassembly in progress at a dead router.
  for (int n = 0; n < n_nodes; ++n) {
    const bool dead = router_up_[static_cast<std::size_t>(n)] == 0;
    for (int p = 0; p < kDirectionCount; ++p) {
      const std::size_t f = port_index(n, p);
      const std::size_t arena_base = f * static_cast<std::size_t>(depth_);
      int pos = fifo_head_[f];
      for (int k = 0; k < fifo_size_[f]; ++k) {
        const Flit& fl = arena_[arena_base + static_cast<std::size_t>(pos)];
        if (++pos == depth_) pos = 0;
        if (dead) {
          doomed_.push_back(fl.packet);
        } else if (fl.is_head() &&
                   adaptive_table_[f * nodes +
                                   static_cast<std::size_t>(fl.dst)] ==
                       kUnreachableRoute) {
          doomed_.push_back(fl.packet);
        }
      }
      if (owner_input_[f] >= 0) {
        bool broken = dead;
        if (!broken && p != kLocal) {
          const std::size_t l =
              static_cast<std::size_t>(n) * 4 + static_cast<std::size_t>(p);
          const int down = neighbor_node_[l];
          broken = link_up_[l] == 0 ||
                   (down >= 0 && router_up_[static_cast<std::size_t>(down)] == 0);
        }
        if (broken) doomed_.push_back(owner_packet_[f]);
      }
    }
    if (dead) {
      for (int s = 0; s < n_nodes; ++s) {
        const ReassemblySlot& slot =
            slots_[static_cast<std::size_t>(n) * nodes +
                   static_cast<std::size_t>(s)];
        if (slot.flits > 0 || slot.discarding) doomed_.push_back(slot.pid);
      }
      const auto& ni = nis_[static_cast<std::size_t>(n)];
      // The dead NI's current attempt dies with it even when every flit is
      // in flight elsewhere on a healthy path: Pass B4 resolves the tracker
      // (recording the drop), so letting those flits eject would count the
      // same packet both dropped and delivered.
      if (ni.tracked_active) doomed_.push_back(ni.tracked_pid);
      if (ni.staged_pos < ni.staged_flits.size())
        doomed_.push_back(ni.staged_flits[0].packet);
    }
  }
  std::sort(doomed_.begin(), doomed_.end());
  doomed_.erase(std::unique(doomed_.begin(), doomed_.end()), doomed_.end());
  const auto is_doomed = [this](PacketId pid) {
    return std::binary_search(doomed_.begin(), doomed_.end(), pid);
  };

  if (!doomed_.empty()) {
    // Pass B1: drop doomed flits from the input FIFOs, compacting each
    // ring in place and returning the freed buffer slots' credits
    // upstream. Source trackers see their flit counts fall (a zeroed count
    // is what arms their retransmission).
    std::vector<Flit> kept(static_cast<std::size_t>(depth_));
    for (int n = 0; n < n_nodes; ++n) {
      const bool dead = router_up_[static_cast<std::size_t>(n)] == 0;
      for (int p = 0; p < kDirectionCount; ++p) {
        const std::size_t f = port_index(n, p);
        const int sz = fifo_size_[f];
        if (sz == 0) continue;
        const std::size_t arena_base = f * static_cast<std::size_t>(depth_);
        int pos = fifo_head_[f];
        int keep = 0;
        for (int k = 0; k < sz; ++k) {
          const Flit fl = arena_[arena_base + static_cast<std::size_t>(pos)];
          if (++pos == depth_) pos = 0;
          if (dead || is_doomed(fl.packet)) {
            note_flit_left_network(fl);
            if (p != kLocal) {
              const int up =
                  neighbor_node_[static_cast<std::size_t>(n) * 4 +
                                 static_cast<std::size_t>(p)];
              if (up >= 0)
                ++credits_[static_cast<std::size_t>(up) * 4 +
                           static_cast<std::size_t>(kOppositeDir[p])];
            }
            --node_buffered_[static_cast<std::size_t>(n)];
            --buffered_flits_;
          } else {
            kept[static_cast<std::size_t>(keep++)] = fl;
          }
        }
        if (keep != sz) {
          for (int k = 0; k < keep; ++k)
            arena_[arena_base + static_cast<std::size_t>(k)] =
                kept[static_cast<std::size_t>(k)];
          fifo_head_[f] = 0;
          fifo_size_[f] = keep;
          if (keep > 0) refresh_head(f);
        }
      }
    }
    // Pass B2: release wormhole grants held by doomed packets.
    for (std::size_t f = 0; f < owner_input_.size(); ++f) {
      if (owner_input_[f] >= 0 && is_doomed(owner_packet_[f])) {
        owner_input_[f] = -1;
        owner_packet_[f] = 0;
      }
    }
    // Pass B3: clear stranded reassembly slots. No drop is recorded here —
    // the source tracker owns the packet's accounting (it retransmits or
    // resolves dropped/unreachable at its timeout).
    for (int d = 0; d < n_nodes; ++d) {
      const bool ddead = router_up_[static_cast<std::size_t>(d)] == 0;
      for (int s = 0; s < n_nodes; ++s) {
        ReassemblySlot& slot = slots_[static_cast<std::size_t>(d) * nodes +
                                      static_cast<std::size_t>(s)];
        if (slot.flits == 0 && !slot.discarding) continue;
        if (!ddead && !is_doomed(slot.pid)) continue;
        if (slot.flits > 0) {
          slot.flits = 0;
          --partial_count_;
        }
        slot.discarding = false;
        slot.pid = 0;
      }
    }
  }

  // Pass B4: NI cleanup — always runs (a dead router may hold queued
  // messages even when no flit of its was buffered).
  for (int n = 0; n < n_nodes; ++n) {
    auto& ni = nis_[static_cast<std::size_t>(n)];
    if (router_up_[static_cast<std::size_t>(n)] == 0) {
      // Dead PE: everything queued or tracked here resolves now. A tracked
      // message whose delivery notice is already in flight was delivered —
      // counting it dropped would double-count.
      ni.staged_flits.clear();
      ni.staged_pos = 0;
      if (ni.tracked_active) {
        if (ni.tracked_ack_at == kNoAck) stats_.note_packet_dropped();
        resolve_tracked(ni);
      }
      while (!ni.send_queue.empty()) {
        stats_.note_packet_dropped();
        recycle(ni.send_queue.pop());
      }
    } else if (ni.staged_pos < ni.staged_flits.size() &&
               is_doomed(ni.staged_flits[0].packet)) {
      // The partially injected attempt was purged from the fabric; discard
      // its remaining staged flits so the tracker can retransmit the whole
      // message cleanly.
      ni.staged_flits.clear();
      ni.staged_pos = 0;
    }
  }
}

void Fabric::note_flit_left_network(const Flit& flit) {
  // renoc-hot-begin (once per flit leaving a degraded fabric)
  auto& ni = nis_[static_cast<std::size_t>(flit.src)];
  if (ni.tracked_active && ni.tracked_pid == flit.packet)
    --ni.tracked_flits_in_net;
  // renoc-hot-end
}

void Fabric::restage_tracked(NetworkInterface& ni) {
  const PacketId pid = next_packet_id_++;
  ni.tracked_pid = pid;
  ni.tracked_flits_in_net = 0;
  build_staged_flits(ni, ni.tracked_msg, pid, ni.tracked_seq);
  const int shift = std::min(ni.tracked_attempts, guard_.backoff_shift_cap);
  ni.tracked_deadline = now_ + (guard_.timeout_cycles << shift);
}

void Fabric::resolve_tracked(NetworkInterface& ni) {
  ni.tracked_active = false;
  ni.tracked_pid = 0;
  ni.tracked_ack_at = kNoAck;
  ni.tracked_flits_in_net = 0;
}

void Fabric::admit_next_message(int node, NetworkInterface& ni) {
  Message msg = ni.send_queue.pop();
  if (!destination_reachable(node, msg.dst)) {
    // Refused at the source — reported, never spun on. One admission
    // attempt per cycle keeps the cold path bounded.
    stats_.note_packet_unreachable();
    recycle(std::move(msg));
    return;
  }
  // Keep a copy for retransmission; the displaced buffer feeds the pool.
  recycle(std::move(ni.tracked_msg));
  ni.tracked_msg = std::move(msg);
  ni.tracked_seq = ++ni.next_msg_seq;
  ni.tracked_attempts = 0;
  ni.tracked_ack_at = kNoAck;
  ni.tracked_active = true;
  restage_tracked(ni);
}

void Fabric::guard_tick(int node, NetworkInterface& ni) {
  // renoc-hot-begin (every cycle per live NI on a degraded fabric; the
  // retransmission/admission helpers it calls run per timeout, not per
  // cycle, and any route rebuild in here would trip the route-rebuild
  // lint rule)
  if (ni.tracked_active) {
    // "Attempt gone" = the current attempt has no flit staged or buffered
    // anywhere. Resolution additionally waits for it so stop-and-wait
    // stays airtight: the next message can never interleave with a
    // lingering retransmission at the destination's reassembly slot.
    const bool attempt_gone = ni.tracked_flits_in_net == 0 &&
                              ni.staged_pos >= ni.staged_flits.size();
    if (ni.tracked_ack_at != kNoAck && now_ >= ni.tracked_ack_at &&
        attempt_gone) {
      // Delivery notice landed (the destination counted the delivery).
      resolve_tracked(ni);
    } else if (now_ >= ni.tracked_deadline) {
      // The source acts only on what it can know: a delivery notice that
      // has LANDED. A notice still in flight does not suppress the
      // retransmission below — that is the honest race that produces
      // duplicates (swallowed at reassembly by msg_seq). The in-flight
      // notice is peeked at ONLY for accounting, so a delivered message
      // that exhausts its budget resolves silently instead of
      // double-counting as dropped.
      if (!attempt_gone) {
        // Still physically in the fabric: congestion, not loss. Extend the
        // deadline deterministically instead of duplicating a live packet.
        ni.tracked_deadline = now_ + guard_.timeout_cycles;
      } else if (!destination_reachable(node, ni.tracked_msg.dst)) {
        if (ni.tracked_ack_at == kNoAck) stats_.note_packet_unreachable();
        resolve_tracked(ni);
      } else if (ni.tracked_attempts < guard_.retry_budget) {
        ++ni.tracked_attempts;
        stats_.note_packet_retried();
        restage_tracked(ni);
      } else {
        if (ni.tracked_ack_at == kNoAck) stats_.note_packet_dropped();
        resolve_tracked(ni);
      }
    }
  }
  if (ni.enabled && !ni.tracked_active &&
      ni.staged_pos >= ni.staged_flits.size() && !ni.send_queue.empty())
    admit_next_message(node, ni);
  // renoc-hot-end
}

}  // namespace renoc
