#include "noc/fabric.hpp"

#include <utility>

#include "util/check.hpp"

namespace renoc {

namespace {

constexpr int kLocal = static_cast<int>(Direction::kLocal);

// opposite() as a table over the four mesh directions (N<->S, E<->W); the
// commit loop runs it per flit hop.
constexpr int kOppositeDir[4] = {1, 0, 3, 2};

// Payload buffers kept for reuse; beyond this the pool just frees. High
// enough that real workloads never hit it, low enough to bound memory if a
// caller recycles far more than it sends.
constexpr std::size_t kPayloadPoolCap = 16384;

}  // namespace

void NocConfig::validate() const {
  RENOC_CHECK_MSG(dim.width >= 2 && dim.height >= 2,
                  "mesh must be at least 2x2, got " << to_string(dim));
  RENOC_CHECK(buffer_depth >= 1);
  RENOC_CHECK(clock_hz > 0);
}

void Fabric::MessageRing::grow() {
  std::vector<Message> bigger(buf.empty() ? 4 : buf.size() * 2);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t src = head + i;
    if (src >= buf.size()) src -= buf.size();
    bigger[i] = std::move(buf[src]);
  }
  buf = std::move(bigger);
  head = 0;
}

Fabric::Fabric(const NocConfig& config)
    : config_(config), stats_(config.dim.node_count()) {
  config_.validate();
  depth_ = config_.buffer_depth;
  const int n = node_count();
  const std::size_t nodes = static_cast<std::size_t>(n);
  const std::size_t ports = nodes * kDirectionCount;

  arena_.resize(ports * static_cast<std::size_t>(depth_));
  fifo_head_.assign(ports, 0);
  fifo_size_.assign(ports, 0);
  head_packet_.assign(ports, 0);
  head_dst_.assign(ports, 0);
  head_is_head_.assign(ports, 0);
  credits_.assign(nodes * 4, depth_);
  owner_input_.assign(ports, -1);
  owner_packet_.assign(ports, 0);
  rr_pointer_.assign(ports, 0);
  node_buffered_.assign(nodes, 0);
  nis_.resize(nodes);
  slots_.resize(nodes * nodes);
  payload_pool_.reserve(256);
  planned_.reserve(ports);  // hard cap: one move per output port per cycle

  // Topology tables: downstream node per mesh output, and the XY-routing
  // decision for every (here, dst) pair. Both replace per-flit coordinate
  // arithmetic in the hot loops with a single indexed load.
  neighbor_node_.assign(nodes * 4, -1);
  route_table_.assign(nodes * nodes, static_cast<std::uint8_t>(kLocal));
  for (int node = 0; node < n; ++node) {
    const GridCoord here = index_to_coord(node, config_.dim);
    for (int d = 0; d < 4; ++d) {
      const GridCoord nb = neighbor(here, static_cast<Direction>(d));
      if (in_bounds(nb, config_.dim))
        neighbor_node_[static_cast<std::size_t>(node) * 4 +
                       static_cast<std::size_t>(d)] =
            coord_to_index(nb, config_.dim);
    }
    for (int dst = 0; dst < n; ++dst)
      route_table_[static_cast<std::size_t>(node) * nodes +
                   static_cast<std::size_t>(dst)] =
          static_cast<std::uint8_t>(
              xy_route(here, index_to_coord(dst, config_.dim)));
  }
}

void Fabric::push_flit(int node, int port, const Flit& flit) {
  // renoc-hot-begin (once per link traversal, every cycle)
  const std::size_t f = port_index(node, port);
  RENOC_CHECK_MSG(fifo_size_[f] < depth_, "FIFO overflow at node "
                                              << node << " port " << port
                                              << " — credit protocol violated");
  // Conditional wrap, not %: depth_ is a runtime value, so modulo would
  // cost an integer division on every ring operation.
  int slot = fifo_head_[f] + fifo_size_[f];
  if (slot >= depth_) slot -= depth_;
  arena_[f * static_cast<std::size_t>(depth_) +
         static_cast<std::size_t>(slot)] = flit;
  if (++fifo_size_[f] == 1) refresh_head(f);
  ++node_buffered_[static_cast<std::size_t>(node)];
  ++buffered_flits_;
  // renoc-hot-end
}

/// Advances FIFO f past its front flit (caller has already consumed it).
void Fabric::pop_front(int node, std::size_t f) {
  // renoc-hot-begin (once per forwarded flit, every cycle)
  if (++fifo_head_[f] == depth_) fifo_head_[f] = 0;
  if (--fifo_size_[f] > 0) refresh_head(f);
  --node_buffered_[static_cast<std::size_t>(node)];
  --buffered_flits_;
  // renoc-hot-end
}

void Fabric::send(const Message& msg) {
  send(Message(msg));
}

void Fabric::send(Message&& msg) {
  RENOC_CHECK_MSG(msg.src >= 0 && msg.src < node_count(),
                  "bad src " << msg.src);
  RENOC_CHECK_MSG(msg.dst >= 0 && msg.dst < node_count(),
                  "bad dst " << msg.dst);
  nis_[static_cast<std::size_t>(msg.src)].send_queue.push(std::move(msg));
}

std::optional<Message> Fabric::try_receive(int node) {
  RENOC_CHECK(node >= 0 && node < node_count());
  auto& ni = nis_[static_cast<std::size_t>(node)];
  if (ni.delivered.empty()) return std::nullopt;
  return ni.delivered.pop();
}

void Fabric::recycle(Message&& msg) {
  if (payload_pool_.size() >= kPayloadPoolCap) return;
  msg.payload.clear();
  payload_pool_.push_back(std::move(msg.payload));
}

Message Fabric::acquire_message() {
  Message m;
  if (!payload_pool_.empty()) {
    m.payload = std::move(payload_pool_.back());
    payload_pool_.pop_back();
    m.payload.clear();
  }
  return m;
}

int Fabric::delivered_count(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  return static_cast<int>(
      nis_[static_cast<std::size_t>(node)].delivered.size());
}

void Fabric::stage_next_message(int node) {
  auto& ni = nis_[static_cast<std::size_t>(node)];
  if (ni.send_queue.empty()) return;
  Message msg = ni.send_queue.pop();

  const PacketId pid = next_packet_id_++;
  const int nflits = msg.flit_count();
  ni.staged_flits.clear();
  ni.staged_pos = 0;
  ni.staged_flits.reserve(static_cast<std::size_t>(nflits));
  for (int i = 0; i < nflits; ++i) {
    Flit f;
    f.packet = pid;
    f.src = msg.src;
    f.dst = msg.dst;
    f.seq = static_cast<std::uint32_t>(i);
    f.payload = msg.payload.empty() ? 0
                                    : msg.payload[static_cast<std::size_t>(i)];
    f.tag = msg.tag;
    f.injected_at = now_;
    f.pkt_flits = static_cast<std::uint32_t>(nflits);
    if (nflits == 1) {
      f.type = FlitType::kHeadTail;
    } else if (i == 0) {
      f.type = FlitType::kHead;
    } else if (i == nflits - 1) {
      f.type = FlitType::kTail;
    } else {
      f.type = FlitType::kBody;
    }
    ni.staged_flits.push_back(f);
  }
  // The staged message's payload buffer goes back to the pool so the next
  // acquire_message()/reassembly can reuse it.
  recycle(std::move(msg));
}

void Fabric::eject_flit(int node, const Flit& flit) {
  // renoc-hot-begin (once per flit reaching its destination)
  ++stats_.tile(node).ejected_flits;
  const std::size_t nodes = static_cast<std::size_t>(node_count());
  ReassemblySlot& slot =
      slots_[static_cast<std::size_t>(node) * nodes +
             static_cast<std::size_t>(flit.src)];
  if (flit.is_head()) {
    // Wormhole ownership of every traversed port plus FIFO links means a
    // (src, dst) pair never has two packets interleaved at ejection.
    RENOC_CHECK_MSG(slot.flits == 0, "reassembly slot busy for src "
                                         << flit.src << " at node " << node);
    slot.msg.src = flit.src;
    slot.msg.dst = flit.dst;
    slot.msg.tag = flit.tag;
    slot.head_injected_at = flit.injected_at;
    // Reserve the whole payload up front from the head flit's packet
    // length, pulling capacity from the recycling pool when the slot's own
    // buffer (moved out with the previous delivery) is too small.
    if (slot.msg.payload.capacity() < flit.pkt_flits &&
        !payload_pool_.empty()) {
      slot.msg.payload.swap(payload_pool_.back());
      payload_pool_.pop_back();
    }
    slot.msg.payload.clear();
    // renoc-lint-allow(hot-alloc): head-flit reserve reusing pooled capacity
    slot.msg.payload.reserve(flit.pkt_flits);
    ++partial_count_;
  }
  // renoc-lint-allow(hot-alloc): within the capacity reserved at the head
  slot.msg.payload.push_back(flit.payload);
  ++slot.flits;
  if (flit.is_tail()) {
    // A message sent with an empty payload occupies one flit and is
    // delivered with a single zero word (the wire cannot distinguish the
    // two; see Message::flit_count).
    stats_.note_packet_delivered(slot.flits, now_ - slot.head_injected_at);
    nis_[static_cast<std::size_t>(node)].delivered.push(std::move(slot.msg));
    slot.flits = 0;
    --partial_count_;
  }
  // renoc-hot-end
}

void Fabric::step() {
  ++now_;
  const int n_nodes = node_count();
  const std::size_t nodes = static_cast<std::size_t>(n_nodes);
  // Contiguous tile counters, hoisted past tile()'s per-call bounds check
  // (every index below is a valid node).
  TileActivity* const tiles = &stats_.tile(0);

  // --- Phase 1: arbitration over the pre-cycle state --------------------
  // Same decision procedure as Router::arbitrate in the reference engine,
  // inlined over the flat arrays: wormhole continuation first, then
  // round-robin output allocation among buffered head flits.
  // renoc-hot-begin (phases 1+2 run every cycle over every router)
  planned_.clear();
  for (int n = 0; n < n_nodes; ++n) {
    // A router with no buffered flit can plan nothing: continuations stall
    // on empty FIFOs and allocations need a head flit. (The reference
    // arbitrates such routers too, with zero planned moves and a zero
    // arbitration count — no observable difference.)
    if (node_buffered_[static_cast<std::size_t>(n)] == 0) continue;

    const std::size_t base = static_cast<std::size_t>(n) * kDirectionCount;
    const std::size_t credit_base = static_cast<std::size_t>(n) * 4;
    const std::size_t route_base = static_cast<std::size_t>(n) * nodes;
    // Input-major pre-pass: each input's desired output (head flit at the
    // front, routed via the table) is computed once, instead of once per
    // candidate output in the round-robin scans below.
    int want[kDirectionCount];
    for (int in = 0; in < kDirectionCount; ++in) {
      const std::size_t f = base + static_cast<std::size_t>(in);
      want[in] =
          (fifo_size_[f] > 0 && head_is_head_[f] != 0)
              ? static_cast<int>(
                    route_table_[route_base +
                                 static_cast<std::size_t>(head_dst_[f])])
              : -1;
    }
    int new_allocations = 0;
    for (int o = 0; o < kDirectionCount; ++o) {
      const bool credit_ok =
          o == kLocal /* ideal ejection */ ||
          credits_[credit_base + static_cast<std::size_t>(o)] > 0;
      const std::size_t out = base + static_cast<std::size_t>(o);
      const int owner = owner_input_[out];
      if (owner >= 0) {
        // Wormhole continuation: move the next flit of the owning packet
        // if it has arrived and the downstream FIFO can take it.
        const std::size_t f = base + static_cast<std::size_t>(owner);
        if (fifo_size_[f] > 0 && head_packet_[f] == owner_packet_[out] &&
            credit_ok)
          // renoc-lint-allow(hot-alloc): worst case reserved in the ctor
          planned_.push_back(
              PlannedMove{n, owner, static_cast<Direction>(o)});
        continue;
      }
      if (!credit_ok) continue;
      // Round-robin over inputs looking for a head flit routed here.
      const int rr = rr_pointer_[out];
      for (int k = 1; k <= kDirectionCount; ++k) {
        int in = rr + k;
        if (in >= kDirectionCount) in -= kDirectionCount;
        if (want[in] != o) continue;
        // renoc-lint-allow(hot-alloc): worst case reserved in the ctor
        planned_.push_back(PlannedMove{n, in, static_cast<Direction>(o)});
        owner_input_[out] = static_cast<std::int8_t>(in);
        owner_packet_[out] = head_packet_[base + static_cast<std::size_t>(in)];
        rr_pointer_[out] = static_cast<std::int8_t>(in);
        ++new_allocations;
        break;
      }
    }
    tiles[n].arbitrations += static_cast<std::uint64_t>(new_allocations);
  }

  // --- Phase 2: commit all planned moves --------------------------------
  for (const PlannedMove& mv : planned_) {
    const int n = mv.node;
    const std::size_t f = port_index(n, mv.in_port);
    // The flit moves arena-to-arena (or arena-to-reassembly) in one copy:
    // consume it in place, then advance the source ring.
    const Flit& flit = fifo_front(f);
    const bool tail = flit.is_tail();
    TileActivity& act = tiles[n];
    ++act.buffer_reads;
    ++act.crossbar_traversals;

    // Credit return toward the upstream router (not for local injection).
    if (mv.in_port != kLocal) {
      const int up = neighbor_node_[static_cast<std::size_t>(n) * 4 +
                                    static_cast<std::size_t>(mv.in_port)];
      ++credits_[static_cast<std::size_t>(up) * 4 +
                 static_cast<std::size_t>(kOppositeDir[mv.in_port])];
    }

    const int o = static_cast<int>(mv.out);
    if (mv.out == Direction::kLocal) {
      eject_flit(n, flit);
    } else {
      const int down = neighbor_node_[static_cast<std::size_t>(n) * 4 +
                                      static_cast<std::size_t>(o)];
      push_flit(down, kOppositeDir[o], flit);
      ++tiles[down].buffer_writes;
      ++act.link_flits;
      --credits_[static_cast<std::size_t>(n) * 4 +
                 static_cast<std::size_t>(o)];
    }
    pop_front(n, f);
    if (tail) {
      const std::size_t out = port_index(n, o);
      owner_input_[out] = -1;
      owner_packet_[out] = 0;
    }
  }
  // renoc-hot-end

  // --- Phase 3: injection ------------------------------------------------
  inject_phase();
}

void Fabric::inject_phase() {
  for (int n = 0; n < node_count(); ++n) {
    auto& ni = nis_[static_cast<std::size_t>(n)];
    if (!ni.enabled) continue;
    if (ni.staged_pos >= ni.staged_flits.size()) stage_next_message(n);
    if (ni.staged_pos >= ni.staged_flits.size()) continue;
    if (fifo_size_[port_index(n, kLocal)] >= depth_) continue;
    push_flit(n, kLocal, ni.staged_flits[ni.staged_pos++]);
    TileActivity& act = stats_.tile(n);
    ++act.injected_flits;
    ++act.buffer_writes;
  }
}

void Fabric::run(int n) {
  RENOC_CHECK(n >= 0);
  for (int i = 0; i < n; ++i) step();
}

int Fabric::drain(int max_cycles) {
  for (int i = 0; i < max_cycles; ++i) {
    if (idle()) return i;
    step();
  }
  RENOC_CHECK_MSG(idle(), "network failed to drain in " << max_cycles
                                                        << " cycles");
  return max_cycles;
}

bool Fabric::idle() const {
  // No buffered flit also implies no wormhole grant can be pending (a held
  // grant means a tail flit is still staged or buffered somewhere), and no
  // active reassembly (its tail would be in flight) — so these two counters
  // plus the NI queues cover the reference engine's full quiescence check.
  if (buffered_flits_ != 0 || partial_count_ != 0) return false;
  for (const auto& ni : nis_) {
    if (!ni.send_queue.empty()) return false;
    if (ni.staged_pos < ni.staged_flits.size()) return false;
  }
  return true;
}

void Fabric::set_injection_enabled(int node, bool enabled) {
  RENOC_CHECK(node >= 0 && node < node_count());
  nis_[static_cast<std::size_t>(node)].enabled = enabled;
}

bool Fabric::injection_enabled(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  return nis_[static_cast<std::size_t>(node)].enabled;
}

int Fabric::pending_send_count(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  const auto& ni = nis_[static_cast<std::size_t>(node)];
  const int staged_left = ni.staged_pos < ni.staged_flits.size() ? 1 : 0;
  return static_cast<int>(ni.send_queue.size()) + staged_left;
}

}  // namespace renoc
