// Mesh fabric: routers + links + network interfaces, stepped cycle by cycle.
//
// The Fabric is the "modified cycle-accurate NoC simulator" of the DATE'05
// flow. Workload engines (the LDPC decoder, traffic generators, the
// migration controller) drive it in a simple loop:
//
//   fabric.send(msg);                  // enqueue at the source NI
//   fabric.step();                     // advance one clock
//   while (auto m = fabric.try_receive(node)) { ... }
//
// Cycle semantics (one step() call):
//   1. Arbitration: every router plans at most one flit move per output
//      port from the pre-cycle state (credits, FIFO heads).
//   2. Commit: planned flits pop from input FIFOs, traverse the crossbar,
//      and land in the downstream input FIFO (1-cycle link) or the local
//      ejection queue; credits update (1-cycle credit loop).
//   3. Injection: each enabled NI streams up to one flit of its current
//      packet into the router's local input FIFO.
//
// Every event increments the activity counters that feed the power model.
// Ejection is ideal (unbounded reassembly buffers); injection queues are
// unbounded but serialize at one flit per cycle. Both are standard
// simulator idealizations and are documented in DESIGN.md.
//
// --- Flat engine memory layout ---------------------------------------------
//
// One LDPC block costs ~55k fabric cycles and the DTM studies step the mesh
// millions of times, so step() is a first-class hot loop. The seed
// implementation (preserved in noc/reference_fabric.{hpp,cpp} as the
// bit-exactness oracle) kept a Router object per tile with five std::deque
// FIFOs and reassembled packets through an unordered_map; this engine keeps
// the identical cycle semantics but lays every piece of per-cycle state out
// as flat per-fabric arrays. With N = node_count, P = kDirectionCount (5),
// D = buffer_depth, and f = node * P + port:
//
//   arena_         Flit[N*P*D]   all input FIFOs, carved from one buffer;
//                                FIFO f is the fixed-capacity ring
//                                arena_[f*D .. f*D+D-1]
//   fifo_head_/fifo_size_ [N*P]  ring cursors for each FIFO
//   credits_       int[N*4]      free downstream slots per mesh output
//   owner_input_   int8[N*P]     wormhole grant: input that owns output
//                                (-1 = free)
//   owner_packet_  PacketId[N*P] packet holding the grant
//   rr_pointer_    int8[N*P]     round-robin arbitration cursor
//   neighbor_node_ int[N*4]      downstream node per mesh output (-1 edge)
//   route_table_   uint8[N*N]    XY output port for (here, dst), computed
//                                once instead of per-flit coordinate math
//   slots_         [N*N]         packet reassembly, one slot per (dst, src)
//                                pair — wormhole + XY + FIFO links ensure at
//                                most one packet per pair is ever in flight,
//                                replacing the seed's unordered_map
//
// Two-phase plan/commit is unchanged: arbitration appends PlannedMoves to a
// reused scratch vector from the pre-cycle snapshot, then the commit loop
// applies them; no intra-cycle ordering can leak. All per-cycle scratch
// (planned moves, NI staging buffers, reassembly payloads, delivered rings)
// is reused across cycles, and message payload buffers circulate through an
// internal recycling pool (see recycle()/acquire_message()), so step()
// performs zero heap allocations once the workload reaches steady state —
// bench/micro_noc.cpp asserts this and the bit-exactness against the
// reference on every run.
// --- Degraded-fabric mode ---------------------------------------------------
//
// install_fault_plan() / configure_delivery_guard() switch the fabric into
// degraded mode. The zero-fault configuration stays bit-identical to the
// reference engine because every degraded-mode hook is gated behind a
// single `degraded_` flag: until one of those calls happens, step() runs
// the exact pre-fault code path (XY tables, pipelined NI staging, no
// timers).
//
// Degraded-mode semantics:
//   - Fault events (noc/fault_model.hpp) apply at the start of their
//     cycle; each change bumps the route epoch, rebuilds the adaptive
//     west-first tables (noc/routing.hpp) outside the hot regions, and
//     purges packets the change strands (flits in dead routers, wormhole
//     grants crossing dead links, heads whose destination became
//     unreachable). Purged packets are never silently lost: their source
//     tracker retransmits or accounts them dropped/unreachable.
//   - The NI layer runs stop-and-wait per source: one tracked message
//     outstanding, a per-packet timeout with deterministic exponential
//     backoff, bounded retransmissions (DeliveryGuardConfig::retry_budget),
//     and a modeled delivery-notice latency (ack_latency_cycles). A
//     retransmission that races its own delivery notice produces a
//     duplicate at the destination, suppressed at reassembly by
//     (src, msg_seq). Messages to unreachable destinations are refused and
//     reported, not spun on.
//   - Every message accepted by send() resolves as exactly one of
//     delivered / dropped / unreachable in NocStats once the fabric
//     drains (the conservation law noc_property_test checks).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "floorplan/grid.hpp"
#include "noc/fault_model.hpp"
#include "noc/flit.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/stats.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"

namespace renoc {

/// Static fabric parameters.
struct NocConfig {
  GridDim dim{4, 4};
  int buffer_depth = 4;      ///< input FIFO depth, flits
  double clock_hz = 500e6;   ///< used to convert cycles to seconds

  void validate() const;
};

/// End-to-end delivery-guarantee parameters for degraded mode.
struct DeliveryGuardConfig {
  int retry_budget = 3;          ///< retransmissions allowed per message
  Cycle timeout_cycles = 512;    ///< base per-attempt timeout
  Cycle ack_latency_cycles = 32; ///< modeled delivery-notice delay
  int backoff_shift_cap = 4;     ///< timeout << min(attempts, cap)

  void validate() const;
};

class Fabric {
 public:
  explicit Fabric(const NocConfig& config);

  const NocConfig& config() const { return config_; }
  int node_count() const { return config_.dim.node_count(); }
  Cycle now() const { return now_; }
  double seconds(Cycle cycles) const {
    return static_cast<double>(cycles) / config_.clock_hz;
  }

  /// Enqueues a message at its source NI. The message must have valid src
  /// and dst node indices. Injection order per source is FIFO.
  void send(const Message& msg);
  /// Move overload: steals the payload buffer instead of copying it. Hot
  /// senders should pair this with acquire_message()/recycle() so payload
  /// buffers circulate instead of being reallocated per message.
  void send(Message&& msg);

  /// Pops the next fully-reassembled message delivered to `node`, if any.
  std::optional<Message> try_receive(int node);

  /// Returns a consumed message's payload buffer to the fabric's recycling
  /// pool. Optional — but consumers that recycle make the whole
  /// send→inject→eject→receive loop allocation-free in steady state.
  void recycle(Message&& msg);

  /// A fresh Message whose payload capacity comes from the recycling pool
  /// when one is available (fields zeroed, payload empty).
  Message acquire_message();

  /// Number of delivered-but-unread messages at `node`.
  int delivered_count(int node) const;

  /// Advances the clock by one cycle.
  void step();
  /// Advances `n` cycles.
  void run(int n);

  /// Runs until the network is completely idle (no buffered flits, no
  /// pending injections). Returns the number of cycles stepped. Throws if
  /// the network fails to drain within `max_cycles`.
  int drain(int max_cycles = 1'000'000);

  /// True if no flit is buffered or in flight and all NI queues are empty.
  bool idle() const;

  /// Enables/disables injection at a node (used to halt PEs during
  /// migration; delivery continues so in-flight packets can land).
  void set_injection_enabled(int node, bool enabled);
  bool injection_enabled(int node) const;

  /// Messages waiting (not yet fully injected) at a node's NI.
  int pending_send_count(int node) const;

  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }

  // --- Degraded-fabric mode (see the header comment block) ---------------

  /// Installs a fault plan (events must be the sorted output of
  /// make_fault_plan) and enters degraded mode. The fabric must be idle.
  /// Events whose cycle has already passed apply on the next step().
  void install_fault_plan(const FaultPlan& plan);

  /// Sets the delivery-guarantee parameters and enters degraded mode.
  /// Installing a fault plan without calling this uses the defaults.
  void configure_delivery_guard(const DeliveryGuardConfig& cfg);

  bool degraded() const { return degraded_; }
  /// Topology-change epoch counter: bumps once per applied fault-event
  /// batch; the adaptive tables are rebuilt exactly once per epoch.
  int route_epoch() const { return route_epoch_; }
  bool router_alive(int node) const;
  bool link_alive(int node, int dir) const;
  /// True if a fresh injection at `src` can reach `dst` under the current
  /// tables (always true outside degraded mode).
  bool destination_reachable(int src, int dst) const;

 private:
  /// Vector-backed message FIFO. Pops reuse slots and growth happens only
  /// at the high-water mark, so steady-state push/pop never touches the
  /// heap (std::deque churns chunk allocations at block seams even when
  /// its size is stationary).
  struct MessageRing {
    std::vector<Message> buf;
    std::size_t head = 0;
    std::size_t count = 0;

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    void push(Message&& m) {
      if (count == buf.size()) grow();
      std::size_t slot = head + count;
      if (slot >= buf.size()) slot -= buf.size();
      buf[slot] = std::move(m);
      ++count;
    }
    Message pop() {
      Message m = std::move(buf[head]);
      ++head;
      if (head == buf.size()) head = 0;
      --count;
      return m;
    }
    void grow();
  };

  /// Sentinel for "no delivery notice pending" in the tracked-send state.
  static constexpr Cycle kNoAck = ~Cycle{0};

  /// Per-node network interface state.
  struct NetworkInterface {
    bool enabled = true;
    MessageRing send_queue;
    // Serializer workspace for the message currently being injected
    // (cleared and refilled per message; capacity persists).
    std::vector<Flit> staged_flits;
    std::size_t staged_pos = 0;
    MessageRing delivered;

    // Delivery-guard state, live only in degraded mode: the one tracked
    // outstanding message (stop-and-wait per source — delivery guarantees
    // are bought with throughput on a degraded fabric). The message copy
    // is retained until resolution so timeouts can retransmit it.
    Message tracked_msg;
    PacketId tracked_pid = 0;
    std::uint32_t tracked_seq = 0;      ///< msg_seq, stable across attempts
    int tracked_attempts = 0;           ///< retransmissions issued so far
    Cycle tracked_deadline = 0;
    Cycle tracked_ack_at = kNoAck;      ///< cycle the delivery notice lands
    int tracked_flits_in_net = 0;       ///< current attempt's buffered flits
    bool tracked_active = false;
    std::uint32_t next_msg_seq = 0;     ///< per-source sequence counter
  };

  /// Reassembly state for the (dst, src) pair's in-flight packet.
  struct ReassemblySlot {
    Message msg;
    Cycle head_injected_at = 0;
    int flits = 0;  ///< 0 = no packet in progress
    PacketId pid = 0;  ///< packet being reassembled (purge bookkeeping)
    /// Highest msg_seq delivered from this src (degraded mode): a head
    /// carrying msg_seq <= this is a retransmission duplicate.
    std::uint32_t last_seq_delivered = 0;
    bool discarding = false;  ///< swallowing a suppressed duplicate
  };

  std::size_t port_index(int node, int port) const {
    return static_cast<std::size_t>(node) * kDirectionCount +
           static_cast<std::size_t>(port);
  }
  const Flit& fifo_front(std::size_t f) const {
    return arena_[f * static_cast<std::size_t>(depth_) +
                  static_cast<std::size_t>(fifo_head_[f])];
  }
  void refresh_head(std::size_t f) {
    const Flit& fl = fifo_front(f);
    head_packet_[f] = fl.packet;
    head_dst_[f] = fl.dst;
    head_is_head_[f] = fl.is_head() ? 1 : 0;
  }
  void push_flit(int node, int port, const Flit& flit);
  void pop_front(int node, std::size_t f);

  void stage_next_message(int node);
  void inject_phase();
  void eject_flit(int node, const Flit& flit);

  // Degraded-mode machinery (all cold paths; nothing here is reached when
  // degraded_ is false).
  void enter_degraded_mode();
  void build_staged_flits(NetworkInterface& ni, const Message& msg,
                          PacketId pid, std::uint32_t msg_seq);
  void apply_due_faults();
  void purge_stranded_packets();
  void note_flit_left_network(const Flit& flit);
  void guard_tick(int node, NetworkInterface& ni);
  void admit_next_message(int node, NetworkInterface& ni);
  void restage_tracked(NetworkInterface& ni);
  void resolve_tracked(NetworkInterface& ni);

  NocConfig config_;
  int depth_ = 0;  ///< config_.buffer_depth, hoisted for the ring math
  Cycle now_ = 0;
  PacketId next_packet_id_ = 1;

  // Flat per-fabric router state (layout documented in the header comment).
  std::vector<Flit> arena_;
  std::vector<int> fifo_head_;
  // FIFO sizes and the head-flit metadata mirrors (refreshed whenever a
  // FIFO's front changes): the arbitration scan reads only these dense
  // arrays instead of striding 48-byte Flits out of the arena. They are
  // lane-aligned with zero-filled tails (AlignedVec) because the SIMD
  // want[]-prepass (noc/arb_kernels.hpp) reads them whole lane groups at
  // a time — a zeroed pad port has fifo_size 0 and scans as want -1.
  AlignedVec<int> fifo_size_;
  std::vector<PacketId> head_packet_;
  AlignedVec<int> head_dst_;
  AlignedVec<std::uint8_t> head_is_head_;
  std::vector<int> credits_;
  std::vector<std::int8_t> owner_input_;
  std::vector<PacketId> owner_packet_;
  std::vector<std::int8_t> rr_pointer_;
  std::vector<int> neighbor_node_;
  std::vector<std::uint8_t> route_table_;
  std::vector<int> node_buffered_;  ///< flits buffered per node (early-out)

  // SIMD arbitration prepass state. On a vector tier, step() computes the
  // whole fabric's want[] array in one kernel call over the mirrors; the
  // per-node loop then reads its five-entry slice. Null on the scalar
  // tier, where the inline per-node computation (identical semantics) is
  // already optimal. want_base_* hold the per-port route-table row offsets
  // for the two routing modes; both route tables carry kRouteTablePad
  // bytes of tail slack for the gather overread (see arb_kernels.hpp).
  static constexpr std::size_t kRouteTablePad = 4;
  const simd::KernelTable* want_kernels_ = nullptr;
  int ports_padded_ = 0;  ///< port count rounded up to a full lane group
  AlignedVec<int> want_scan_;
  AlignedVec<int> want_base_xy_;
  AlignedVec<int> want_base_adaptive_;
  int buffered_flits_ = 0;          ///< total flits in all FIFOs
  int partial_count_ = 0;           ///< active reassembly slots, all nodes

  std::vector<NetworkInterface> nis_;
  std::vector<ReassemblySlot> slots_;  ///< [dst * N + src]
  std::vector<std::vector<std::uint64_t>> payload_pool_;
  NetworkStats stats_;
  std::vector<PlannedMove> planned_;  // scratch, reserved once

  // Degraded-fabric state (untouched while degraded_ is false).
  bool degraded_ = false;
  bool adaptive_active_ = false;  ///< first event flipped routing off XY
  int route_epoch_ = 0;
  DeliveryGuardConfig guard_;
  std::vector<FaultEvent> fault_events_;  ///< sorted; consumed by cursor
  std::size_t next_fault_ = 0;
  std::vector<std::uint8_t> link_up_;    ///< [N*4], 0 = dead or mesh edge
  std::vector<std::uint8_t> router_up_;  ///< [N]
  /// West-first next hops, [(node*kDirectionCount + in_port)*N + dst];
  /// rebuilt by build_adaptive_routes once per route epoch.
  std::vector<std::uint8_t> adaptive_table_;
  std::vector<PacketId> doomed_;  ///< purge scratch, sorted + deduped
};

}  // namespace renoc
