// Mesh fabric: routers + links + network interfaces, stepped cycle by cycle.
//
// The Fabric is the "modified cycle-accurate NoC simulator" of the DATE'05
// flow. Workload engines (the LDPC decoder, traffic generators, the
// migration controller) drive it in a simple loop:
//
//   fabric.send(msg);                  // enqueue at the source NI
//   fabric.step();                     // advance one clock
//   while (auto m = fabric.try_receive(node)) { ... }
//
// Cycle semantics (one step() call):
//   1. Arbitration: every router plans at most one flit move per output
//      port from the pre-cycle state (credits, FIFO heads).
//   2. Commit: planned flits pop from input FIFOs, traverse the crossbar,
//      and land in the downstream input FIFO (1-cycle link) or the local
//      ejection queue; credits update (1-cycle credit loop).
//   3. Injection: each enabled NI streams up to one flit of its current
//      packet into the router's local input FIFO.
//
// Every event increments the activity counters that feed the power model.
// Ejection is ideal (unbounded reassembly buffers); injection queues are
// unbounded but serialize at one flit per cycle. Both are standard
// simulator idealizations and are documented in DESIGN.md.
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "floorplan/grid.hpp"
#include "noc/flit.hpp"
#include "noc/router.hpp"
#include "noc/stats.hpp"

namespace renoc {

/// Static fabric parameters.
struct NocConfig {
  GridDim dim{4, 4};
  int buffer_depth = 4;      ///< input FIFO depth, flits
  double clock_hz = 500e6;   ///< used to convert cycles to seconds

  void validate() const;
};

class Fabric {
 public:
  explicit Fabric(const NocConfig& config);

  const NocConfig& config() const { return config_; }
  int node_count() const { return config_.dim.node_count(); }
  Cycle now() const { return now_; }
  double seconds(Cycle cycles) const {
    return static_cast<double>(cycles) / config_.clock_hz;
  }

  /// Enqueues a message at its source NI. The message must have valid src
  /// and dst node indices. Injection order per source is FIFO.
  void send(const Message& msg);

  /// Pops the next fully-reassembled message delivered to `node`, if any.
  std::optional<Message> try_receive(int node);

  /// Number of delivered-but-unread messages at `node`.
  int delivered_count(int node) const;

  /// Advances the clock by one cycle.
  void step();
  /// Advances `n` cycles.
  void run(int n);

  /// Runs until the network is completely idle (no buffered flits, no
  /// pending injections). Returns the number of cycles stepped. Throws if
  /// the network fails to drain within `max_cycles`.
  int drain(int max_cycles = 1'000'000);

  /// True if no flit is buffered or in flight and all NI queues are empty.
  bool idle() const;

  /// Enables/disables injection at a node (used to halt PEs during
  /// migration; delivery continues so in-flight packets can land).
  void set_injection_enabled(int node, bool enabled);
  bool injection_enabled(int node) const;

  /// Messages waiting (not yet fully injected) at a node's NI.
  int pending_send_count(int node) const;

  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }

 private:
  /// Per-node network interface state.
  struct NetworkInterface {
    bool enabled = true;
    std::deque<Message> send_queue;
    // Serializer state for the message currently being injected.
    std::vector<Flit> staged_flits;
    std::size_t staged_pos = 0;
    std::deque<Message> delivered;
    // Reassembly of incoming packets by packet id.
    struct Partial {
      Message msg;
      Cycle head_injected_at = 0;
      int flits = 0;
    };
    std::unordered_map<PacketId, Partial> partial;
  };

  void stage_next_message(int node);
  void inject_phase();
  void eject_flit(int node, const Flit& flit);

  NocConfig config_;
  Cycle now_ = 0;
  PacketId next_packet_id_ = 1;
  std::vector<Router> routers_;
  std::vector<NetworkInterface> nis_;
  // credits_[node][dir]: free downstream slots for the output `dir` of
  // `node` (mesh directions only; ejection is always available).
  std::vector<std::array<int, 4>> credits_;
  NetworkStats stats_;
  std::vector<PlannedMove> planned_;  // scratch, reused across cycles
};

}  // namespace renoc
