// Activity counters and performance statistics for the NoC.
//
// The DATE'05 flow runs "a modified cycle-accurate NoC simulator ... to
// obtain switching rates for the components in the chip during operation";
// these counters are that instrumentation. The power module converts them
// to energy with per-event costs (Orion-style).
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace renoc {

/// Switching-event counters for one tile (router + its four outgoing mesh
/// links + the local PE interface).
struct TileActivity {
  std::uint64_t buffer_writes = 0;     ///< flits written into input FIFOs
  std::uint64_t buffer_reads = 0;      ///< flits popped from input FIFOs
  std::uint64_t crossbar_traversals = 0;  ///< flits through the switch
  std::uint64_t arbitrations = 0;      ///< output-port allocation decisions
  std::uint64_t link_flits = 0;        ///< flits on outgoing mesh links
  std::uint64_t injected_flits = 0;    ///< flits entering from the local PE
  std::uint64_t ejected_flits = 0;     ///< flits delivered to the local PE
  std::uint64_t pe_compute_ops = 0;    ///< workload-defined compute events
  std::uint64_t pe_state_words = 0;    ///< migration state words converted

  void clear() { *this = TileActivity{}; }

  TileActivity& operator+=(const TileActivity& o) {
    buffer_writes += o.buffer_writes;
    buffer_reads += o.buffer_reads;
    crossbar_traversals += o.crossbar_traversals;
    arbitrations += o.arbitrations;
    link_flits += o.link_flits;
    injected_flits += o.injected_flits;
    ejected_flits += o.ejected_flits;
    pe_compute_ops += o.pe_compute_ops;
    pe_state_words += o.pe_state_words;
    return *this;
  }
};

/// Network-wide statistics collected by the fabric.
class NetworkStats {
 public:
  explicit NetworkStats(int node_count);

  TileActivity& tile(int node);
  const TileActivity& tile(int node) const;
  int node_count() const { return static_cast<int>(tiles_.size()); }

  /// Packet latency in cycles, head injection to tail ejection.
  RunningStats& packet_latency() { return packet_latency_; }
  const RunningStats& packet_latency() const { return packet_latency_; }

  std::uint64_t packets_delivered() const { return packets_delivered_; }
  std::uint64_t flits_delivered() const { return flits_delivered_; }
  void note_packet_delivered(int flits, Cycle latency);

  // Delivery-guarantee accounting for degraded fabrics. Every message the
  // NI layer accepts resolves as exactly one of delivered / dropped /
  // unreachable (the conservation law noc_property_test checks); retries
  // and suppressed duplicates are event counts layered on top. All four
  // stay zero on a fault-free fabric.
  std::uint64_t packets_retried() const { return packets_retried_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t packets_unreachable() const { return packets_unreachable_; }
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  void note_packet_retried() { ++packets_retried_; }
  void note_packet_dropped() { ++packets_dropped_; }
  void note_packet_unreachable() { ++packets_unreachable_; }
  void note_duplicate_suppressed() { ++duplicates_suppressed_; }

  /// Sum of all tile counters.
  TileActivity total() const;

  void clear();

 private:
  std::vector<TileActivity> tiles_;
  RunningStats packet_latency_;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t flits_delivered_ = 0;
  std::uint64_t packets_retried_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_unreachable_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
};

}  // namespace renoc
