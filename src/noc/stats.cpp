#include "noc/stats.hpp"

#include "util/check.hpp"

namespace renoc {

NetworkStats::NetworkStats(int node_count)
    : tiles_(static_cast<std::size_t>(node_count)) {
  RENOC_CHECK(node_count > 0);
}

TileActivity& NetworkStats::tile(int node) {
  RENOC_CHECK(node >= 0 && node < node_count());
  return tiles_[static_cast<std::size_t>(node)];
}

const TileActivity& NetworkStats::tile(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  return tiles_[static_cast<std::size_t>(node)];
}

void NetworkStats::note_packet_delivered(int flits, Cycle latency) {
  ++packets_delivered_;
  flits_delivered_ += static_cast<std::uint64_t>(flits);
  packet_latency_.add(static_cast<double>(latency));
}

TileActivity NetworkStats::total() const {
  TileActivity sum;
  for (const TileActivity& t : tiles_) sum += t;
  return sum;
}

void NetworkStats::clear() {
  for (TileActivity& t : tiles_) t.clear();
  packet_latency_ = RunningStats{};
  packets_delivered_ = 0;
  flits_delivered_ = 0;
  packets_retried_ = 0;
  packets_dropped_ = 0;
  packets_unreachable_ = 0;
  duplicates_suppressed_ = 0;
}

}  // namespace renoc
