// Seed-era NoC fabric, preserved verbatim as the semantics oracle.
//
// This is the original deque-and-map implementation of the cycle-accurate
// simulator (per-port std::deque FIFOs inside Router, an unordered_map for
// packet reassembly, per-Router wormhole/credit/round-robin state). The
// flat structure-of-arrays engine in noc/fabric.{hpp,cpp} replaced it on
// the hot path; this copy exists so every optimization of the fast engine
// can be checked bit-for-bit against the known-good loops:
//
//   - same cycle counts for any driving sequence,
//   - same per-node delivery order and message contents,
//   - same NocStats down to every TileActivity counter and the
//     packet-latency accumulator.
//
// tests/noc_flat_test.cpp and bench/micro_noc.cpp drive both engines with
// identical send schedules and fail on any divergence. Do not "improve"
// this file: its value is that it does not change. (Same policy as
// ldpc/reference_decoder and the dense LU oracle in thermal/solver.)
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "floorplan/grid.hpp"
#include "noc/fabric.hpp"
#include "noc/flit.hpp"
#include "noc/router.hpp"
#include "noc/stats.hpp"

namespace renoc {

/// Drop-in oracle with the same public surface as the fast Fabric.
class ReferenceFabric {
 public:
  explicit ReferenceFabric(const NocConfig& config);

  const NocConfig& config() const { return config_; }
  int node_count() const { return config_.dim.node_count(); }
  Cycle now() const { return now_; }
  double seconds(Cycle cycles) const {
    return static_cast<double>(cycles) / config_.clock_hz;
  }

  /// Enqueues a message at its source NI. The message must have valid src
  /// and dst node indices. Injection order per source is FIFO.
  void send(const Message& msg);

  /// Pops the next fully-reassembled message delivered to `node`, if any.
  std::optional<Message> try_receive(int node);

  /// Number of delivered-but-unread messages at `node`.
  int delivered_count(int node) const;

  /// Advances the clock by one cycle.
  void step();
  /// Advances `n` cycles.
  void run(int n);

  /// Runs until the network is completely idle (no buffered flits, no
  /// pending injections). Returns the number of cycles stepped. Throws if
  /// the network fails to drain within `max_cycles`.
  int drain(int max_cycles = 1'000'000);

  /// True if no flit is buffered or in flight and all NI queues are empty.
  bool idle() const;

  /// Enables/disables injection at a node (used to halt PEs during
  /// migration; delivery continues so in-flight packets can land).
  void set_injection_enabled(int node, bool enabled);
  bool injection_enabled(int node) const;

  /// Messages waiting (not yet fully injected) at a node's NI.
  int pending_send_count(int node) const;

  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }

 private:
  /// Per-node network interface state.
  struct NetworkInterface {
    bool enabled = true;
    std::deque<Message> send_queue;
    // Serializer state for the message currently being injected.
    std::vector<Flit> staged_flits;
    std::size_t staged_pos = 0;
    std::deque<Message> delivered;
    // Reassembly of incoming packets by packet id.
    struct Partial {
      Message msg;
      Cycle head_injected_at = 0;
      int flits = 0;
    };
    std::unordered_map<PacketId, Partial> partial;
  };

  void stage_next_message(int node);
  void inject_phase();
  void eject_flit(int node, const Flit& flit);

  NocConfig config_;
  Cycle now_ = 0;
  PacketId next_packet_id_ = 1;
  std::vector<Router> routers_;
  std::vector<NetworkInterface> nis_;
  // credits_[node][dir]: free downstream slots for the output `dir` of
  // `node` (mesh directions only; ejection is always available).
  std::vector<std::array<int, 4>> credits_;
  NetworkStats stats_;
  std::vector<PlannedMove> planned_;  // scratch, reused across cycles
};

}  // namespace renoc
