// NoC arbitration want[]-prepass kernel, templated over a util/simd i32
// lane backend and instantiated once per tier in the util/simd_*.cpp TUs.
//
// Scans the fabric's head-flit metadata mirrors (fifo_size, head_is_head,
// head_dst — maintained incrementally by Fabric::refresh_head) for all
// input ports at once and materializes the per-port routing decision the
// scalar arbitration loop computes inline:
//
//   want[f] = table[route_base[f] + head_dst[f]]   if the FIFO is
//             non-empty, the front flit is a head, and the route is not
//             kUnreachableRoute (0xFF); otherwise -1.
//
// route_base carries the per-port table row offset (node*nodes for the XY
// table, f*nodes for the per-input-port adaptive table), so one kernel
// serves both routing modes. Contracts: `ports` is padded to a multiple of
// the lane width with zeroed mirror tails (pad lanes index table row 0 and
// come out -1 because their fifo_size is 0), and the table carries 4 bytes
// of tail padding for the dword-gather overread (see Avx2I32::gather_u8).
// The mask arithmetic is bit-exact: every tier produces the identical
// want[] array, pinned by tests/simd_test.cpp and the micro_noc CI guard.
#pragma once

#include <cstdint>

namespace renoc::noc_kernels {

inline constexpr std::uint8_t kUnreachableRouteByte = 0xFF;

// renoc-hot-begin (arbitration prepass: runs once per Fabric::step)

template <typename V>
void want_scan(const int* fifo_size, const std::uint8_t* head_is_head,
               const int* head_dst, const int* route_base,
               const std::uint8_t* route_table, int ports, int* want) {
  constexpr int W = V::kLanes;
  const V minus_one = V::set1(-1);
  const V unreachable = V::set1(kUnreachableRouteByte);
  for (int f = 0; f < ports; f += W) {
    const V size = V::load(fifo_size + f);
    const V is_head = V::widen_u8(head_is_head + f);
    const V ready = V::and_(V::cmpgt(size, V::zero()),
                            V::cmpgt(is_head, V::zero()));
    const V idx = V::add(V::load(route_base + f), V::load(head_dst + f));
    const V route = V::gather_u8(route_table, idx);
    const V usable = V::andnot(V::cmpeq(route, unreachable), ready);
    V::store(want + f,
             V::or_(V::and_(usable, route), V::andnot(usable, minus_one)));
  }
}

// renoc-hot-end

}  // namespace renoc::noc_kernels
