#include "noc/fault_model.hpp"

#include <algorithm>

#include "noc/routing.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

// Distinguishes the fault stream from the traffic stream derived from the
// same (seed, scenario) pair. An arbitrary odd constant folded through
// mix64 below; pinned by the determinism tests in noc_fault_test.cpp.
constexpr std::uint64_t kFaultStreamSalt = 0xfa517ab1e0c0ffeeULL;

/// All unidirectional mesh links of `dim` as (node, port) pairs, in node-
/// then-port order. The enumeration order is part of plan determinism.
std::vector<FaultEvent> enumerate_links(const GridDim& dim) {
  std::vector<FaultEvent> links;
  for (int node = 0; node < dim.node_count(); ++node) {
    const GridCoord here = index_to_coord(node, dim);
    for (int d = 0; d < 4; ++d) {
      if (!in_bounds(neighbor(here, static_cast<Direction>(d)), dim)) continue;
      FaultEvent e;
      e.node = node;
      e.port = d;
      links.push_back(e);
    }
  }
  return links;
}

/// Draws `count` distinct indices from [0, pool) via a partial
/// Fisher–Yates shuffle over an index vector.
std::vector<std::size_t> sample_without_replacement(std::size_t pool,
                                                    std::size_t count,
                                                    Rng& rng) {
  std::vector<std::size_t> idx(pool);
  for (std::size_t i = 0; i < pool; ++i) idx[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.next_index(pool - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(count);
  return idx;
}

Cycle draw_cycle(Cycle lo, Cycle hi, Rng& rng) {
  return lo + static_cast<Cycle>(
                  rng.next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDead: return "link_dead";
    case FaultKind::kRouterDead: return "router_dead";
    case FaultKind::kLinkFlaky: return "link_flaky";
  }
  return "?";
}

void FaultSpec::validate(const GridDim& dim) const {
  RENOC_CHECK_MSG(count >= 0, "fault count must be >= 0, got " << count);
  RENOC_CHECK(onset_min <= onset_max);
  // The flake window only exists for flaky links; dead-link/router specs
  // may leave the unused fields zeroed.
  if (kind == FaultKind::kLinkFlaky)
    RENOC_CHECK(flake_min >= 1 && flake_min <= flake_max);
  if (kind == FaultKind::kRouterDead) {
    RENOC_CHECK_MSG(count < dim.node_count(),
                    "cannot kill all " << dim.node_count() << " routers");
  } else {
    const std::size_t links = enumerate_links(dim).size();
    RENOC_CHECK_MSG(static_cast<std::size_t>(count) <= links,
                    "mesh has only " << links << " links, requested "
                                     << count << " link faults");
  }
}

Cycle FaultPlan::last_event_cycle() const {
  Cycle last = 0;
  for (const FaultEvent& e : events) last = std::max(last, e.cycle);
  return last;
}

FaultPlan make_fault_plan(const GridDim& dim, const FaultSpec& spec, Rng rng) {
  spec.validate(dim);
  FaultPlan plan;
  if (spec.count == 0) return plan;
  const std::size_t count = static_cast<std::size_t>(spec.count);

  if (spec.kind == FaultKind::kRouterDead) {
    const std::vector<std::size_t> victims = sample_without_replacement(
        static_cast<std::size_t>(dim.node_count()), count, rng);
    for (const std::size_t v : victims) {
      FaultEvent e;
      e.kind = FaultEvent::Kind::kRouterDown;
      e.node = static_cast<int>(v);
      e.cycle = draw_cycle(spec.onset_min, spec.onset_max, rng);
      plan.events.push_back(e);
    }
  } else {
    const std::vector<FaultEvent> links = enumerate_links(dim);
    const std::vector<std::size_t> victims =
        sample_without_replacement(links.size(), count, rng);
    for (const std::size_t v : victims) {
      FaultEvent down = links[v];
      down.kind = FaultEvent::Kind::kLinkDown;
      down.cycle = draw_cycle(spec.onset_min, spec.onset_max, rng);
      plan.events.push_back(down);
      if (spec.kind == FaultKind::kLinkFlaky) {
        FaultEvent up = down;
        up.kind = FaultEvent::Kind::kLinkUp;
        up.cycle =
            down.cycle + draw_cycle(spec.flake_min, spec.flake_max, rng);
        plan.events.push_back(up);
      }
    }
  }

  // Total order: application order must not depend on generation order.
  // A link's kLinkUp always sorts after its own kLinkDown (strictly later
  // cycle, flake_min >= 1), so sorting cannot invert a flake window.
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.cycle != b.cycle) return a.cycle < b.cycle;
              if (a.kind != b.kind)
                return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              if (a.node != b.node) return a.node < b.node;
              return a.port < b.port;
            });
  return plan;
}

Rng fault_scenario_rng(std::uint64_t seed, int scenario_index) {
  RENOC_CHECK(scenario_index >= 0);
  return Rng(derive_stream_seed(mix64(seed ^ kFaultStreamSalt),
                                static_cast<std::uint64_t>(scenario_index)));
}

}  // namespace renoc
