// Verbatim seed Fabric loops (see the header for the oracle policy). Only
// the class name differs from the pre-flat implementation.
#include "noc/reference_fabric.hpp"

#include <array>

#include "util/check.hpp"

namespace renoc {

ReferenceFabric::ReferenceFabric(const NocConfig& config)
    : config_(config),
      nis_(static_cast<std::size_t>(config.dim.node_count())),
      credits_(static_cast<std::size_t>(config.dim.node_count())),
      stats_(config.dim.node_count()) {
  config_.validate();
  routers_.reserve(static_cast<std::size_t>(node_count()));
  for (int i = 0; i < node_count(); ++i)
    routers_.emplace_back(i, config_.dim, config_.buffer_depth);
  for (auto& c : credits_) c.fill(config_.buffer_depth);
}

void ReferenceFabric::send(const Message& msg) {
  RENOC_CHECK_MSG(msg.src >= 0 && msg.src < node_count(),
                  "bad src " << msg.src);
  RENOC_CHECK_MSG(msg.dst >= 0 && msg.dst < node_count(),
                  "bad dst " << msg.dst);
  nis_[static_cast<std::size_t>(msg.src)].send_queue.push_back(msg);
}

std::optional<Message> ReferenceFabric::try_receive(int node) {
  RENOC_CHECK(node >= 0 && node < node_count());
  auto& ni = nis_[static_cast<std::size_t>(node)];
  if (ni.delivered.empty()) return std::nullopt;
  Message m = std::move(ni.delivered.front());
  ni.delivered.pop_front();
  return m;
}

int ReferenceFabric::delivered_count(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  return static_cast<int>(
      nis_[static_cast<std::size_t>(node)].delivered.size());
}

void ReferenceFabric::stage_next_message(int node) {
  auto& ni = nis_[static_cast<std::size_t>(node)];
  if (ni.send_queue.empty()) return;
  const Message msg = std::move(ni.send_queue.front());
  ni.send_queue.pop_front();

  const PacketId pid = next_packet_id_++;
  const int nflits = msg.flit_count();
  ni.staged_flits.clear();
  ni.staged_pos = 0;
  ni.staged_flits.reserve(static_cast<std::size_t>(nflits));
  for (int i = 0; i < nflits; ++i) {
    Flit f;
    f.packet = pid;
    f.src = msg.src;
    f.dst = msg.dst;
    f.seq = static_cast<std::uint32_t>(i);
    f.payload = msg.payload.empty() ? 0
                                    : msg.payload[static_cast<std::size_t>(i)];
    f.tag = msg.tag;
    f.injected_at = now_;
    if (nflits == 1) {
      f.type = FlitType::kHeadTail;
    } else if (i == 0) {
      f.type = FlitType::kHead;
    } else if (i == nflits - 1) {
      f.type = FlitType::kTail;
    } else {
      f.type = FlitType::kBody;
    }
    ni.staged_flits.push_back(f);
  }
}

void ReferenceFabric::eject_flit(int node, const Flit& flit) {
  auto& ni = nis_[static_cast<std::size_t>(node)];
  ++stats_.tile(node).ejected_flits;
  auto& partial = ni.partial[flit.packet];
  if (flit.is_head()) {
    partial.msg.src = flit.src;
    partial.msg.dst = flit.dst;
    partial.msg.tag = flit.tag;
    partial.head_injected_at = flit.injected_at;
  }
  partial.msg.payload.push_back(flit.payload);
  ++partial.flits;
  if (flit.is_tail()) {
    // A message sent with an empty payload occupies one flit and is
    // delivered with a single zero word (the wire cannot distinguish the
    // two; see Message::flit_count).
    stats_.note_packet_delivered(partial.flits,
                                 now_ - partial.head_injected_at);
    ni.delivered.push_back(std::move(partial.msg));
    ni.partial.erase(flit.packet);
  }
}

void ReferenceFabric::step() {
  ++now_;

  // --- Phase 1: arbitration over the pre-cycle state --------------------
  planned_.clear();
  for (int n = 0; n < node_count(); ++n) {
    bool credit_ok[kDirectionCount];
    for (int d = 0; d < 4; ++d)
      credit_ok[d] = credits_[static_cast<std::size_t>(n)][
                         static_cast<std::size_t>(d)] > 0;
    credit_ok[static_cast<int>(Direction::kLocal)] = true;  // ideal ejection
    const int allocs = routers_[static_cast<std::size_t>(n)].arbitrate(
        credit_ok, planned_);
    stats_.tile(n).arbitrations += static_cast<std::uint64_t>(allocs);
  }

  // --- Phase 2: commit all planned moves --------------------------------
  for (const PlannedMove& mv : planned_) {
    Router& r = routers_[static_cast<std::size_t>(mv.node)];
    const Flit flit = r.pop(mv.in_port);
    TileActivity& act = stats_.tile(mv.node);
    ++act.buffer_reads;
    ++act.crossbar_traversals;

    // Credit return toward the upstream router (not for local injection).
    if (mv.in_port != static_cast<int>(Direction::kLocal)) {
      const Direction from = static_cast<Direction>(mv.in_port);
      const GridCoord up = neighbor(r.coord(), from);
      const int up_node = coord_to_index(up, config_.dim);
      const int up_out = static_cast<int>(opposite(from));
      ++credits_[static_cast<std::size_t>(up_node)][
          static_cast<std::size_t>(up_out)];
    }

    if (mv.out == Direction::kLocal) {
      eject_flit(mv.node, flit);
      if (flit.is_tail()) r.release_output(Direction::kLocal);
    } else {
      const GridCoord down = neighbor(r.coord(), mv.out);
      const int down_node = coord_to_index(down, config_.dim);
      Router& dr = routers_[static_cast<std::size_t>(down_node)];
      dr.push(static_cast<int>(opposite(mv.out)), flit);
      ++stats_.tile(down_node).buffer_writes;
      ++act.link_flits;
      --credits_[static_cast<std::size_t>(mv.node)][
          static_cast<std::size_t>(static_cast<int>(mv.out))];
      if (flit.is_tail()) r.release_output(mv.out);
    }
  }

  // --- Phase 3: injection ------------------------------------------------
  inject_phase();
}

void ReferenceFabric::inject_phase() {
  const int local = static_cast<int>(Direction::kLocal);
  for (int n = 0; n < node_count(); ++n) {
    auto& ni = nis_[static_cast<std::size_t>(n)];
    if (!ni.enabled) continue;
    if (ni.staged_pos >= ni.staged_flits.size()) stage_next_message(n);
    if (ni.staged_pos >= ni.staged_flits.size()) continue;
    Router& r = routers_[static_cast<std::size_t>(n)];
    if (r.fifo_space(local) <= 0) continue;
    r.push(local, ni.staged_flits[ni.staged_pos++]);
    TileActivity& act = stats_.tile(n);
    ++act.injected_flits;
    ++act.buffer_writes;
  }
}

void ReferenceFabric::run(int n) {
  RENOC_CHECK(n >= 0);
  for (int i = 0; i < n; ++i) step();
}

int ReferenceFabric::drain(int max_cycles) {
  for (int i = 0; i < max_cycles; ++i) {
    if (idle()) return i;
    step();
  }
  RENOC_CHECK_MSG(idle(), "network failed to drain in " << max_cycles
                                                        << " cycles");
  return max_cycles;
}

bool ReferenceFabric::idle() const {
  for (const Router& r : routers_)
    if (!r.quiescent()) return false;
  for (const auto& ni : nis_) {
    if (!ni.send_queue.empty()) return false;
    if (ni.staged_pos < ni.staged_flits.size()) return false;
    if (!ni.partial.empty()) return false;
  }
  return true;
}

void ReferenceFabric::set_injection_enabled(int node, bool enabled) {
  RENOC_CHECK(node >= 0 && node < node_count());
  nis_[static_cast<std::size_t>(node)].enabled = enabled;
}

bool ReferenceFabric::injection_enabled(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  return nis_[static_cast<std::size_t>(node)].enabled;
}

int ReferenceFabric::pending_send_count(int node) const {
  RENOC_CHECK(node >= 0 && node < node_count());
  const auto& ni = nis_[static_cast<std::size_t>(node)];
  int staged_left =
      static_cast<int>(ni.staged_flits.size() - ni.staged_pos) > 0 ? 1 : 0;
  return static_cast<int>(ni.send_queue.size()) + staged_left;
}

}  // namespace renoc
