#include "noc/sweep_harness.hpp"

#include <memory>

#include "util/check.hpp"

namespace renoc {

void SweepConfig::validate() const {
  // Axis and thread checks come from util/sweep so all three harnesses
  // fail with the same pinned messages (sweep_test asserts on them).
  sweep::require_axis(!patterns.empty(), "pattern");
  sweep::require_axis(!mesh_sides.empty(), "mesh side");
  sweep::require_axis(!injection_rates.empty(), "injection rate");
  sweep::require_axis(!message_words.empty(), "message length");
  for (int side : mesh_sides)
    RENOC_CHECK_MSG(side >= 2, "mesh side must be >= 2, got " << side);
  for (double rate : injection_rates)
    RENOC_CHECK_MSG(rate > 0.0 && rate <= 1.0,
                    "injection rate must be in (0, 1], got " << rate);
  for (int words : message_words)
    RENOC_CHECK_MSG(words >= 1, "message length must be >= 1");
  sweep::require_axis(!fault_counts.empty(), "fault count");
  sweep::require_axis(!fault_kinds.empty(), "fault kind");
  sweep::require_axis(!retry_budgets.empty(), "retry budget");
  for (int budget : retry_budgets)
    RENOC_CHECK_MSG(budget >= kGuardDisabled,
                    "retry budget must be >= -1, got " << budget);
  // Every (mesh, kind, count) combination must be a valid FaultSpec, so an
  // oversubscribed fault axis fails up front instead of inside a worker.
  for (int side : mesh_sides)
    for (FaultKind kind : fault_kinds)
      for (int count : fault_counts) {
        RENOC_CHECK_MSG(count >= 0, "fault count must be >= 0, got " << count);
        if (count == 0) continue;
        FaultSpec spec;
        spec.kind = kind;
        spec.count = count;
        spec.validate(GridDim{side, side});
      }
  RENOC_CHECK(buffer_depth >= 1);
  RENOC_CHECK(warmup_cycles >= 0);
  RENOC_CHECK(measure_cycles >= 1);
  RENOC_CHECK(drain_max_cycles >= 1);
  sweep::require_threads(threads);
  burst.validate();
  // TrafficGenerator's own precondition, hoisted here so an infeasible
  // burst/rate combination fails up front instead of inside a worker.
  for (double rate : injection_rates)
    for (int words : message_words)
      RENOC_CHECK_MSG(
          rate / words / burst.duty_cycle() <= 1.0,
          "on-state injection probability exceeds 1 for rate "
              << rate << ", " << words
              << "-word messages — raise the burst duty cycle");
}

std::vector<SweepScenario> SweepConfig::scenarios() const {
  // Enumerate through the shared row-major index decoder (pattern-major,
  // fault axes innermost — byte-identical to the nested loops this
  // replaced), so a scenario index means the same cell here, in the
  // service's shards, and in any replay.
  const std::vector<std::int64_t> shape = {
      static_cast<std::int64_t>(patterns.size()),
      static_cast<std::int64_t>(mesh_sides.size()),
      static_cast<std::int64_t>(injection_rates.size()),
      static_cast<std::int64_t>(message_words.size()),
      static_cast<std::int64_t>(fault_counts.size()),
      static_cast<std::int64_t>(fault_kinds.size()),
      static_cast<std::int64_t>(retry_budgets.size())};
  const std::int64_t total = sweep::axis_product(shape);
  std::vector<SweepScenario> out;
  out.reserve(static_cast<std::size_t>(total));
  std::vector<std::int64_t> d;
  for (std::int64_t i = 0; i < total; ++i) {
    sweep::decode_scenario_index(i, shape, d);
    SweepScenario sc;
    sc.pattern = patterns[static_cast<std::size_t>(d[0])];
    const int side = mesh_sides[static_cast<std::size_t>(d[1])];
    sc.dim = GridDim{side, side};
    sc.injection_rate = injection_rates[static_cast<std::size_t>(d[2])];
    sc.message_words = message_words[static_cast<std::size_t>(d[3])];
    sc.burst = burst;
    sc.fault_count = fault_counts[static_cast<std::size_t>(d[4])];
    sc.fault_kind = fault_kinds[static_cast<std::size_t>(d[5])];
    sc.retry_budget = retry_budgets[static_cast<std::size_t>(d[6])];
    out.push_back(sc);
  }
  return out;
}

Rng sweep_scenario_rng(std::uint64_t seed, int scenario_index) {
  RENOC_CHECK(scenario_index >= 0);
  // Stateless derivation (same idiom as ber_block_rng): any scenario's
  // stream is reachable in O(1), so replaying one scenario never
  // re-simulates the grid before it.
  return Rng(derive_stream_seed(seed,
                                static_cast<std::uint64_t>(scenario_index)));
}

SweepPoint run_noc_scenario(const SweepScenario& scenario,
                            const SweepConfig& cfg, int scenario_index) {
  NocConfig ncfg;
  ncfg.dim = scenario.dim;
  ncfg.buffer_depth = cfg.buffer_depth;
  Fabric fabric(ncfg);
  // Degraded-fabric setup happens before the first step, while the fabric
  // is idle. The fault plan's stream is salted separately from the traffic
  // stream but derived from the same (seed, scenario_index) pair, so any
  // scenario — faulty or not — replays in O(1) with run_noc_scenario().
  if (scenario.retry_budget >= 0) {
    DeliveryGuardConfig guard;
    guard.retry_budget = scenario.retry_budget;
    fabric.configure_delivery_guard(guard);
  }
  if (scenario.fault_count > 0) {
    FaultSpec spec;
    spec.kind = scenario.fault_kind;
    spec.count = scenario.fault_count;
    // Faults land inside the measured window so the delivery guard's
    // counters have something to say.
    spec.onset_min = static_cast<Cycle>(cfg.warmup_cycles);
    spec.onset_max =
        static_cast<Cycle>(cfg.warmup_cycles + cfg.measure_cycles);
    fabric.install_fault_plan(
        make_fault_plan(scenario.dim, spec,
                        fault_scenario_rng(cfg.seed, scenario_index)));
  }
  TrafficGenerator gen(fabric, scenario.pattern, scenario.injection_rate,
                       scenario.message_words,
                       sweep_scenario_rng(cfg.seed, scenario_index),
                       scenario.hotspot, scenario.burst);

  gen.run(cfg.warmup_cycles);
  // Measure from a clean slate: warm-up packets drop out of the stats, and
  // every packet delivered from here on (including the drain tail) has its
  // latency recorded.
  fabric.stats().clear();
  const std::uint64_t sent0 = gen.messages_sent();
  const std::uint64_t received0 = gen.messages_received();
  const std::uint64_t skipped0 = gen.messages_skipped();
  const Cycle measure_start = fabric.now();

  gen.run(cfg.measure_cycles);
  // Accepted throughput counts only flits that arrived inside the measure
  // window — the drain below exists so measured packets' latencies land in
  // the stats, and must not inflate the throughput curve (a saturated mesh
  // has to show accepted < offered).
  const std::uint64_t flits_in_window = fabric.stats().flits_delivered();

  SweepPoint point;
  point.scenario = scenario;
  point.scenario_index = scenario_index;
  point.messages_sent = gen.messages_sent() - sent0;
  point.messages_skipped = gen.messages_skipped() - skipped0;

  // Drain so in-flight measured packets land (injection stops: the
  // generator is no longer stepped, and the fabric has nothing staged
  // beyond its queues).
  std::uint64_t drain_received = 0;
  int drained = 0;
  while (!fabric.idle()) {
    fabric.step();
    for (int node = 0; node < fabric.node_count(); ++node)
      while (auto msg = fabric.try_receive(node)) {
        ++drain_received;
        fabric.recycle(std::move(*msg));
      }
    RENOC_CHECK_MSG(++drained <= cfg.drain_max_cycles,
                    "scenario failed to drain in " << cfg.drain_max_cycles
                                                   << " cycles");
  }
  point.messages_received =
      gen.messages_received() - received0 + drain_received;

  const NetworkStats& stats = fabric.stats();
  point.packets_delivered = stats.packets_delivered();
  point.flits_delivered = stats.flits_delivered();
  point.avg_latency_cycles = stats.packet_latency().mean();
  point.max_latency_cycles = stats.packet_latency().max();
  point.cycles = fabric.now() - measure_start;
  point.packets_retried = stats.packets_retried();
  point.packets_dropped = stats.packets_dropped();
  point.packets_unreachable = stats.packets_unreachable();
  point.duplicates_suppressed = stats.duplicates_suppressed();
  point.route_epochs = fabric.route_epoch();

  const double node_cycles =
      static_cast<double>(scenario.dim.node_count()) *
      static_cast<double>(cfg.measure_cycles);
  point.offered_flit_rate =
      static_cast<double>(point.messages_sent + point.messages_skipped) *
      scenario.message_words / node_cycles;
  point.injected_flit_rate =
      static_cast<double>(point.messages_sent) * scenario.message_words /
      node_cycles;
  point.accepted_flit_rate =
      static_cast<double>(flits_in_window) / node_cycles;
  return point;
}

std::vector<SweepPoint> run_noc_sweep(const SweepConfig& cfg) {
  cfg.validate();
  const std::vector<SweepScenario> grid = cfg.scenarios();
  std::vector<SweepPoint> results(grid.size());

  // Scenario-level parallelism (util/sweep): each scenario is simulated
  // end to end by one worker into its preassigned slot, so the merge is
  // the identity and any schedule yields identical results; the first
  // scenario failure (e.g. drain timeout) aborts the rest and is rethrown
  // after the join.
  sweep::parallel_for_scenarios(
      static_cast<std::int64_t>(grid.size()), cfg.threads,
      [&](std::int64_t i) {
        results[static_cast<std::size_t>(i)] =
            run_noc_scenario(grid[static_cast<std::size_t>(i)], cfg,
                             static_cast<int>(i));
      });
  return results;
}

namespace {

// Service-record layout: one 16-word record per grid cell.
enum NocWord {
  kMessagesSent = 0,
  kMessagesReceived,
  kMessagesSkipped,
  kPacketsDelivered,
  kFlitsDelivered,
  kOfferedRate,
  kInjectedRate,
  kAcceptedRate,
  kAvgLatency,
  kMaxLatency,
  kCycles,
  kPacketsRetried,
  kPacketsDropped,
  kPacketsUnreachable,
  kDuplicatesSuppressed,
  kRouteEpochs,
};
constexpr int kNocRecordWords = 16;

}  // namespace

sweep::SweepSpec make_noc_sweep_spec(const SweepConfig& cfg) {
  cfg.validate();
  sweep::SweepSpec spec;
  const auto grid =
      std::make_shared<const std::vector<SweepScenario>>(cfg.scenarios());
  spec.enumerated = static_cast<std::int64_t>(grid->size());
  spec.record_words = kNocRecordWords;
  // Fingerprint everything that determines a scenario's measurement;
  // threads are excluded (results are thread-count invariant).
  sweep::DigestBuilder digest;
  digest.fold_string("noc").fold(cfg.seed);
  for (const TrafficPattern p : cfg.patterns)
    digest.fold_int(static_cast<int>(p));
  for (const int side : cfg.mesh_sides) digest.fold_int(side);
  for (const double rate : cfg.injection_rates) digest.fold_real(rate);
  for (const int words : cfg.message_words) digest.fold_int(words);
  for (const int count : cfg.fault_counts) digest.fold_int(count);
  for (const FaultKind kind : cfg.fault_kinds)
    digest.fold_int(static_cast<int>(kind));
  for (const int budget : cfg.retry_budgets) digest.fold_int(budget);
  digest.fold_int(cfg.burst.enabled ? 1 : 0)
      .fold_real(cfg.burst.p_on_to_off)
      .fold_real(cfg.burst.p_off_to_on)
      .fold_int(cfg.buffer_depth)
      .fold_int(cfg.warmup_cycles)
      .fold_int(cfg.measure_cycles)
      .fold_int(cfg.drain_max_cycles);
  spec.config_digest = digest.digest();

  spec.make_runner = [grid, &cfg]() {
    return [grid, &cfg](std::int64_t scenario, std::uint64_t* words) {
      const SweepPoint point = run_noc_scenario(
          (*grid)[static_cast<std::size_t>(scenario)], cfg,
          static_cast<int>(scenario));
      words[kMessagesSent] = point.messages_sent;
      words[kMessagesReceived] = point.messages_received;
      words[kMessagesSkipped] = point.messages_skipped;
      words[kPacketsDelivered] = point.packets_delivered;
      words[kFlitsDelivered] = point.flits_delivered;
      words[kOfferedRate] = sweep::pack_double(point.offered_flit_rate);
      words[kInjectedRate] = sweep::pack_double(point.injected_flit_rate);
      words[kAcceptedRate] = sweep::pack_double(point.accepted_flit_rate);
      words[kAvgLatency] = sweep::pack_double(point.avg_latency_cycles);
      words[kMaxLatency] = sweep::pack_double(point.max_latency_cycles);
      words[kCycles] = point.cycles;
      words[kPacketsRetried] = point.packets_retried;
      words[kPacketsDropped] = point.packets_dropped;
      words[kPacketsUnreachable] = point.packets_unreachable;
      words[kDuplicatesSuppressed] = point.duplicates_suppressed;
      words[kRouteEpochs] = static_cast<std::uint64_t>(point.route_epochs);
    };
  };
  return spec;
}

SweepPoint noc_point_from_record(const SweepScenario& scenario,
                                 const sweep::ScenarioRecord& rec) {
  RENOC_CHECK_MSG(rec.outcome == sweep::Outcome::kCompleted &&
                      rec.words.size() == kNocRecordWords,
                  "NoC record for scenario " << rec.scenario
                                             << " is not a completed "
                                             << kNocRecordWords
                                             << "-word record");
  SweepPoint point;
  point.scenario = scenario;
  point.scenario_index = static_cast<int>(rec.scenario);
  point.messages_sent = rec.words[kMessagesSent];
  point.messages_received = rec.words[kMessagesReceived];
  point.messages_skipped = rec.words[kMessagesSkipped];
  point.packets_delivered = rec.words[kPacketsDelivered];
  point.flits_delivered = rec.words[kFlitsDelivered];
  point.offered_flit_rate = sweep::unpack_double(rec.words[kOfferedRate]);
  point.injected_flit_rate = sweep::unpack_double(rec.words[kInjectedRate]);
  point.accepted_flit_rate = sweep::unpack_double(rec.words[kAcceptedRate]);
  point.avg_latency_cycles = sweep::unpack_double(rec.words[kAvgLatency]);
  point.max_latency_cycles = sweep::unpack_double(rec.words[kMaxLatency]);
  point.cycles = rec.words[kCycles];
  point.packets_retried = rec.words[kPacketsRetried];
  point.packets_dropped = rec.words[kPacketsDropped];
  point.packets_unreachable = rec.words[kPacketsUnreachable];
  point.duplicates_suppressed = rec.words[kDuplicatesSuppressed];
  point.route_epochs = static_cast<int>(rec.words[kRouteEpochs]);
  return point;
}

}  // namespace renoc
