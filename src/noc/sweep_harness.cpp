#include "noc/sweep_harness.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "util/check.hpp"

namespace renoc {

void SweepConfig::validate() const {
  RENOC_CHECK_MSG(!patterns.empty(), "sweep needs at least one pattern");
  RENOC_CHECK_MSG(!mesh_sides.empty(), "sweep needs at least one mesh side");
  RENOC_CHECK_MSG(!injection_rates.empty(),
                  "sweep needs at least one injection rate");
  RENOC_CHECK_MSG(!message_words.empty(),
                  "sweep needs at least one message length");
  for (int side : mesh_sides)
    RENOC_CHECK_MSG(side >= 2, "mesh side must be >= 2, got " << side);
  for (double rate : injection_rates)
    RENOC_CHECK_MSG(rate > 0.0 && rate <= 1.0,
                    "injection rate must be in (0, 1], got " << rate);
  for (int words : message_words)
    RENOC_CHECK_MSG(words >= 1, "message length must be >= 1");
  RENOC_CHECK_MSG(!fault_counts.empty(), "sweep needs at least one fault count");
  RENOC_CHECK_MSG(!fault_kinds.empty(), "sweep needs at least one fault kind");
  RENOC_CHECK_MSG(!retry_budgets.empty(),
                  "sweep needs at least one retry budget");
  for (int budget : retry_budgets)
    RENOC_CHECK_MSG(budget >= kGuardDisabled,
                    "retry budget must be >= -1, got " << budget);
  // Every (mesh, kind, count) combination must be a valid FaultSpec, so an
  // oversubscribed fault axis fails up front instead of inside a worker.
  for (int side : mesh_sides)
    for (FaultKind kind : fault_kinds)
      for (int count : fault_counts) {
        RENOC_CHECK_MSG(count >= 0, "fault count must be >= 0, got " << count);
        if (count == 0) continue;
        FaultSpec spec;
        spec.kind = kind;
        spec.count = count;
        spec.validate(GridDim{side, side});
      }
  RENOC_CHECK(buffer_depth >= 1);
  RENOC_CHECK(warmup_cycles >= 0);
  RENOC_CHECK(measure_cycles >= 1);
  RENOC_CHECK(drain_max_cycles >= 1);
  RENOC_CHECK(threads >= 1);
  burst.validate();
  // TrafficGenerator's own precondition, hoisted here so an infeasible
  // burst/rate combination fails up front instead of inside a worker.
  for (double rate : injection_rates)
    for (int words : message_words)
      RENOC_CHECK_MSG(
          rate / words / burst.duty_cycle() <= 1.0,
          "on-state injection probability exceeds 1 for rate "
              << rate << ", " << words
              << "-word messages — raise the burst duty cycle");
}

std::vector<SweepScenario> SweepConfig::scenarios() const {
  std::vector<SweepScenario> out;
  out.reserve(patterns.size() * mesh_sides.size() * injection_rates.size() *
              message_words.size() * fault_counts.size() *
              fault_kinds.size() * retry_budgets.size());
  for (TrafficPattern pattern : patterns)
    for (int side : mesh_sides)
      for (double rate : injection_rates)
        for (int words : message_words)
          for (int faults : fault_counts)
            for (FaultKind kind : fault_kinds)
              for (int budget : retry_budgets) {
                SweepScenario sc;
                sc.pattern = pattern;
                sc.dim = GridDim{side, side};
                sc.injection_rate = rate;
                sc.message_words = words;
                sc.burst = burst;
                sc.fault_count = faults;
                sc.fault_kind = kind;
                sc.retry_budget = budget;
                out.push_back(sc);
              }
  return out;
}

Rng sweep_scenario_rng(std::uint64_t seed, int scenario_index) {
  RENOC_CHECK(scenario_index >= 0);
  // Stateless derivation (same idiom as ber_block_rng): any scenario's
  // stream is reachable in O(1), so replaying one scenario never
  // re-simulates the grid before it.
  return Rng(derive_stream_seed(seed,
                                static_cast<std::uint64_t>(scenario_index)));
}

SweepPoint run_noc_scenario(const SweepScenario& scenario,
                            const SweepConfig& cfg, int scenario_index) {
  NocConfig ncfg;
  ncfg.dim = scenario.dim;
  ncfg.buffer_depth = cfg.buffer_depth;
  Fabric fabric(ncfg);
  // Degraded-fabric setup happens before the first step, while the fabric
  // is idle. The fault plan's stream is salted separately from the traffic
  // stream but derived from the same (seed, scenario_index) pair, so any
  // scenario — faulty or not — replays in O(1) with run_noc_scenario().
  if (scenario.retry_budget >= 0) {
    DeliveryGuardConfig guard;
    guard.retry_budget = scenario.retry_budget;
    fabric.configure_delivery_guard(guard);
  }
  if (scenario.fault_count > 0) {
    FaultSpec spec;
    spec.kind = scenario.fault_kind;
    spec.count = scenario.fault_count;
    // Faults land inside the measured window so the delivery guard's
    // counters have something to say.
    spec.onset_min = static_cast<Cycle>(cfg.warmup_cycles);
    spec.onset_max =
        static_cast<Cycle>(cfg.warmup_cycles + cfg.measure_cycles);
    fabric.install_fault_plan(
        make_fault_plan(scenario.dim, spec,
                        fault_scenario_rng(cfg.seed, scenario_index)));
  }
  TrafficGenerator gen(fabric, scenario.pattern, scenario.injection_rate,
                       scenario.message_words,
                       sweep_scenario_rng(cfg.seed, scenario_index),
                       scenario.hotspot, scenario.burst);

  gen.run(cfg.warmup_cycles);
  // Measure from a clean slate: warm-up packets drop out of the stats, and
  // every packet delivered from here on (including the drain tail) has its
  // latency recorded.
  fabric.stats().clear();
  const std::uint64_t sent0 = gen.messages_sent();
  const std::uint64_t received0 = gen.messages_received();
  const std::uint64_t skipped0 = gen.messages_skipped();
  const Cycle measure_start = fabric.now();

  gen.run(cfg.measure_cycles);
  // Accepted throughput counts only flits that arrived inside the measure
  // window — the drain below exists so measured packets' latencies land in
  // the stats, and must not inflate the throughput curve (a saturated mesh
  // has to show accepted < offered).
  const std::uint64_t flits_in_window = fabric.stats().flits_delivered();

  SweepPoint point;
  point.scenario = scenario;
  point.scenario_index = scenario_index;
  point.messages_sent = gen.messages_sent() - sent0;
  point.messages_skipped = gen.messages_skipped() - skipped0;

  // Drain so in-flight measured packets land (injection stops: the
  // generator is no longer stepped, and the fabric has nothing staged
  // beyond its queues).
  std::uint64_t drain_received = 0;
  int drained = 0;
  while (!fabric.idle()) {
    fabric.step();
    for (int node = 0; node < fabric.node_count(); ++node)
      while (auto msg = fabric.try_receive(node)) {
        ++drain_received;
        fabric.recycle(std::move(*msg));
      }
    RENOC_CHECK_MSG(++drained <= cfg.drain_max_cycles,
                    "scenario failed to drain in " << cfg.drain_max_cycles
                                                   << " cycles");
  }
  point.messages_received =
      gen.messages_received() - received0 + drain_received;

  const NetworkStats& stats = fabric.stats();
  point.packets_delivered = stats.packets_delivered();
  point.flits_delivered = stats.flits_delivered();
  point.avg_latency_cycles = stats.packet_latency().mean();
  point.max_latency_cycles = stats.packet_latency().max();
  point.cycles = fabric.now() - measure_start;
  point.packets_retried = stats.packets_retried();
  point.packets_dropped = stats.packets_dropped();
  point.packets_unreachable = stats.packets_unreachable();
  point.duplicates_suppressed = stats.duplicates_suppressed();
  point.route_epochs = fabric.route_epoch();

  const double node_cycles =
      static_cast<double>(scenario.dim.node_count()) *
      static_cast<double>(cfg.measure_cycles);
  point.offered_flit_rate =
      static_cast<double>(point.messages_sent + point.messages_skipped) *
      scenario.message_words / node_cycles;
  point.injected_flit_rate =
      static_cast<double>(point.messages_sent) * scenario.message_words /
      node_cycles;
  point.accepted_flit_rate =
      static_cast<double>(flits_in_window) / node_cycles;
  return point;
}

std::vector<SweepPoint> run_noc_sweep(const SweepConfig& cfg) {
  cfg.validate();
  const std::vector<SweepScenario> grid = cfg.scenarios();
  std::vector<SweepPoint> results(grid.size());

  // Scenario-level parallelism: each scenario is simulated end to end by
  // one worker into its preassigned slot, so the merge is the identity and
  // any schedule yields identical results. A scenario failure (e.g. drain
  // timeout) is captured and rethrown after the join — an exception
  // escaping a worker thread would std::terminate the process.
  std::atomic<int> cursor{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) break;
      const int i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= static_cast<int>(grid.size())) break;
      try {
        results[static_cast<std::size_t>(i)] =
            run_noc_scenario(grid[static_cast<std::size_t>(i)], cfg, i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  const int workers = std::min<int>(cfg.threads,
                                    static_cast<int>(grid.size()));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace renoc
