// Synthetic traffic generators for NoC characterization.
//
// The paper's workload is the LDPC decoder, but validating the fabric
// (latency/throughput curves, saturation, fairness) needs standard
// synthetic patterns. These also drive the router microbenchmarks.
#pragma once

#include <cstdint>
#include <functional>

#include "noc/fabric.hpp"
#include "util/rng.hpp"

namespace renoc {

/// Classic destination patterns from the NoC literature.
enum class TrafficPattern {
  kUniformRandom,  ///< uniform over all other nodes
  kTranspose,      ///< (x, y) -> (y, x)
  kBitComplement,  ///< index -> node_count-1-index
  kHotspot,        ///< all nodes send to one hotspot node
  kNeighbor,       ///< (x, y) -> east neighbor (wraps)
};

const char* to_string(TrafficPattern p);

/// Bernoulli-injection synthetic traffic driver.
class TrafficGenerator {
 public:
  /// `injection_rate` is flits/node/cycle (0, 1]; messages are
  /// `message_words` words long; `hotspot` names the target node for
  /// kHotspot.
  TrafficGenerator(Fabric& fabric, TrafficPattern pattern,
                   double injection_rate, int message_words, Rng rng,
                   int hotspot = 0);

  /// Destination for a source under the configured pattern (may be == src
  /// for patterns with fixed points; such messages are skipped).
  int destination(int src);

  /// Advances one cycle: possibly injects at each node, then steps the
  /// fabric and consumes deliveries.
  void step();

  /// Runs `cycles` cycles.
  void run(int cycles);

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_received() const { return messages_received_; }

 private:
  Fabric* fabric_;
  TrafficPattern pattern_;
  double flit_rate_;
  int message_words_;
  Rng rng_;
  int hotspot_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
};

}  // namespace renoc
