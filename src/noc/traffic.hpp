// Synthetic traffic generators for NoC characterization.
//
// The paper's workload is the LDPC decoder, but validating the fabric
// (latency/throughput curves, saturation, fairness) needs standard
// synthetic patterns. These also drive the router microbenchmarks and the
// threaded scenario sweep in noc/sweep_harness.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/fabric.hpp"
#include "util/rng.hpp"

namespace renoc {

/// Classic destination patterns from the NoC literature.
enum class TrafficPattern {
  kUniformRandom,  ///< uniform over all other nodes
  kTranspose,      ///< (x, y) -> (y, x)
  kBitComplement,  ///< index -> node_count-1-index
  kHotspot,        ///< all nodes send to one hotspot node
  kNeighbor,       ///< (x, y) -> east neighbor (wraps)
  kBitReverse,     ///< index bit-reversed within ceil(log2 n) address bits
  kShuffle,        ///< index rotated left one bit (perfect shuffle)
};

const char* to_string(TrafficPattern p);

/// Markov on/off modulation of the injection process (bursty traffic).
///
/// Each node carries a two-state Markov chain stepped once per cycle; a
/// node draws injections only while "on". The on-state injection
/// probability is scaled by 1/duty_cycle so the *long-run offered load
/// still equals the configured injection rate* — bursts change the arrival
/// process (clumped packets, heavier queue tails), not the mean.
struct BurstParams {
  bool enabled = false;
  double p_on_to_off = 0.05;  ///< per-cycle chance an "on" node turns off
  double p_off_to_on = 0.05;  ///< per-cycle chance an "off" node turns on

  /// Long-run fraction of cycles a node spends "on".
  double duty_cycle() const {
    return enabled ? p_off_to_on / (p_on_to_off + p_off_to_on) : 1.0;
  }
  void validate() const;
};

/// Bernoulli-injection synthetic traffic driver (optionally burst-modulated).
class TrafficGenerator {
 public:
  /// `injection_rate` is flits/node/cycle (0, 1]; messages are
  /// `message_words` words long; `hotspot` names the target node for
  /// kHotspot. With `burst.enabled`, injection draws happen only in the
  /// "on" state at rate/duty_cycle (which must still be a probability —
  /// validated).
  TrafficGenerator(Fabric& fabric, TrafficPattern pattern,
                   double injection_rate, int message_words, Rng rng,
                   int hotspot = 0, BurstParams burst = {});

  /// Destination for a source under the configured pattern. May equal
  /// `src` for patterns with fixed points (transpose diagonal, the hotspot
  /// node itself, out-of-range bit-reverse/shuffle images on non-power-of-
  /// two meshes); step() counts such draws in messages_skipped() instead
  /// of silently dropping them, so offered load stays measurable.
  int destination(int src);

  /// Advances one cycle: possibly injects at each node, then steps the
  /// fabric and consumes deliveries (payload buffers are recycled back to
  /// the fabric, keeping the steady-state loop allocation-free).
  void step();

  /// Runs `cycles` cycles.
  void run(int cycles);

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_received() const { return messages_received_; }
  /// Injection draws that hit a pattern fixed point (dst == src). These
  /// count toward offered load but inject nothing; reporting both sides is
  /// what keeps measured offered load equal to the configured rate.
  std::uint64_t messages_skipped() const { return messages_skipped_; }
  std::uint64_t cycles_run() const { return cycles_run_; }

  /// Measured offered load in flits/node/cycle, *including* fixed-point
  /// skips — converges on the configured injection rate.
  double offered_flit_rate() const;
  /// Offered load minus skips: what actually entered the NIs.
  double injected_flit_rate() const;
  /// Delivered load in flits/node/cycle over the cycles run so far.
  double accepted_flit_rate() const;

 private:
  Fabric* fabric_;
  TrafficPattern pattern_;
  double flit_rate_;
  int message_words_;
  Rng rng_;
  int hotspot_;
  BurstParams burst_;
  std::vector<std::uint8_t> node_on_;  ///< Markov state per node (bursty)
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
  std::uint64_t messages_skipped_ = 0;
  std::uint64_t cycles_run_ = 0;
};

}  // namespace renoc
