// Thermally-aware static placement (the paper's baseline).
//
// "Our workload was mapped onto PEs using a thermally-aware placement
// algorithm that minimizes the peak temperature." We implement that
// baseline as simulated annealing over cluster->tile assignments:
//
//   cost(placement) = peak steady-state die temperature of the power map
//                     induced by per-cluster compute power
//                   + comm_weight * sum_ij traffic[i][j] * hops(i, j)
//
// The communication term is a small tie-break that keeps chatty clusters
// close (a pure peak-temperature objective is degenerate: many placements
// share the same peak), mirroring how real thermally-aware mappers also
// respect communication. The SA uses pairwise swaps, geometric cooling,
// and the experiment RNG for reproducibility.
//
// The placer sees only per-cluster *compute* power; router/link power is a
// consequence of placement and is captured afterwards by the full
// cycle-accurate simulation. This one-way split matches the paper's flow
// (placement happens at design time with model power, evaluation happens
// with the simulator).
#pragma once

#include <cstdint>
#include <vector>

#include "floorplan/grid.hpp"
#include "thermal/solver.hpp"
#include "util/rng.hpp"

namespace renoc {

struct PlacerOptions {
  int iterations = 20000;
  double temp_start = 4.0;   ///< SA temperature, in objective units (C)
  double temp_end = 0.02;
  double comm_weight = 0.0;  ///< C per (value * hop); 0 = pure thermal
  std::uint64_t seed = 1;
};

struct PlacementResult {
  std::vector<int> placement;  ///< cluster -> tile
  double peak_temperature = 0.0;  ///< C, at the accepted placement
  double comm_cost = 0.0;         ///< sum traffic * hops
  double cost = 0.0;              ///< combined objective
  int improving_moves = 0;        ///< accepted cost-reducing swaps
};

class ThermalAwarePlacer {
 public:
  /// `solver` must be built over the floorplan whose blocks are the tiles
  /// of `dim` (block i == tile i).
  ThermalAwarePlacer(const SteadyStateSolver& solver, const GridDim& dim,
                     PlacerOptions options);

  /// A hard assignment the annealer must respect: `cluster` stays on
  /// `tile`. Used for architecturally fixed units (e.g. the check-node
  /// row of the ISVLSI'05 LDPC pipeline, whose position is wired into the
  /// chip); the placer optimizes the movable remainder.
  struct Pin {
    int cluster = 0;
    int tile = 0;
  };

  /// Anneals cluster->tile. `cluster_power` (watts per cluster) must have
  /// at most dim.node_count() entries; `traffic[i][j]` is values exchanged
  /// between clusters i and j per unit work (any consistent unit). Pinned
  /// clusters keep their tiles.
  PlacementResult place(const std::vector<double>& cluster_power,
                        const std::vector<std::vector<std::uint64_t>>& traffic,
                        const std::vector<Pin>& pins = {}) const;

  /// Objective value of a given placement (exposed for tests and for
  /// evaluating the identity placement).
  double cost_of(const std::vector<int>& placement,
                 const std::vector<double>& cluster_power,
                 const std::vector<std::vector<std::uint64_t>>& traffic)
      const;

  /// Peak steady-state temperature of a placement under compute power.
  double peak_temperature_of(const std::vector<int>& placement,
                             const std::vector<double>& cluster_power) const;

 private:
  std::vector<double> tile_power_of(
      const std::vector<int>& placement,
      const std::vector<double>& cluster_power) const;
  double comm_cost_of(
      const std::vector<int>& placement,
      const std::vector<std::vector<std::uint64_t>>& traffic) const;

  const SteadyStateSolver* solver_;
  GridDim dim_;
  PlacerOptions options_;
};

}  // namespace renoc
