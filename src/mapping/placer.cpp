#include "mapping/placer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace renoc {

ThermalAwarePlacer::ThermalAwarePlacer(const SteadyStateSolver& solver,
                                       const GridDim& dim,
                                       PlacerOptions options)
    : solver_(&solver), dim_(dim), options_(options) {
  RENOC_CHECK(dim.node_count() > 0);
  RENOC_CHECK_MSG(solver.network().die_count() == dim.node_count(),
                  "thermal network die count "
                      << solver.network().die_count()
                      << " != tile count " << dim.node_count());
  RENOC_CHECK(options_.iterations >= 0);
  RENOC_CHECK(options_.temp_start >= options_.temp_end &&
              options_.temp_end > 0);
  RENOC_CHECK(options_.comm_weight >= 0);
}

std::vector<double> ThermalAwarePlacer::tile_power_of(
    const std::vector<int>& placement,
    const std::vector<double>& cluster_power) const {
  std::vector<double> tile_power(
      static_cast<std::size_t>(dim_.node_count()), 0.0);
  for (std::size_t c = 0; c < cluster_power.size(); ++c) {
    const int tile = placement[c];
    RENOC_CHECK(tile >= 0 && tile < dim_.node_count());
    tile_power[static_cast<std::size_t>(tile)] += cluster_power[c];
  }
  return tile_power;
}

double ThermalAwarePlacer::comm_cost_of(
    const std::vector<int>& placement,
    const std::vector<std::vector<std::uint64_t>>& traffic) const {
  double cost = 0.0;
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    for (std::size_t j = 0; j < traffic[i].size(); ++j) {
      if (traffic[i][j] == 0) continue;
      const GridCoord a = index_to_coord(placement[i], dim_);
      const GridCoord b = index_to_coord(placement[j], dim_);
      cost += static_cast<double>(traffic[i][j]) * manhattan(a, b);
    }
  }
  return cost;
}

double ThermalAwarePlacer::peak_temperature_of(
    const std::vector<int>& placement,
    const std::vector<double>& cluster_power) const {
  return solver_->peak_die_temperature(
      tile_power_of(placement, cluster_power));
}

double ThermalAwarePlacer::cost_of(
    const std::vector<int>& placement,
    const std::vector<double>& cluster_power,
    const std::vector<std::vector<std::uint64_t>>& traffic) const {
  return peak_temperature_of(placement, cluster_power) +
         options_.comm_weight * comm_cost_of(placement, traffic);
}

PlacementResult ThermalAwarePlacer::place(
    const std::vector<double>& cluster_power,
    const std::vector<std::vector<std::uint64_t>>& traffic,
    const std::vector<Pin>& pins) const {
  const int tiles = dim_.node_count();
  const int clusters = static_cast<int>(cluster_power.size());
  RENOC_CHECK_MSG(clusters <= tiles, "more clusters than tiles");
  RENOC_CHECK(static_cast<int>(traffic.size()) == clusters);

  Rng rng(options_.seed);

  // Identity start: cluster i on tile i (unused tiles stay power-free).
  // The swap space is over all tiles so clusters can move into initially
  // unused positions. Pins are applied by swapping their clusters into
  // position first; pinned clusters and their tiles are then frozen.
  std::vector<int> placement(static_cast<std::size_t>(clusters));
  std::iota(placement.begin(), placement.end(), 0);

  std::vector<char> cluster_pinned(static_cast<std::size_t>(clusters), 0);
  std::vector<char> tile_pinned(static_cast<std::size_t>(tiles), 0);
  {
    // occupant[tile] = cluster currently there (-1 free), to run the
    // pin-installing swaps.
    std::vector<int> occ(static_cast<std::size_t>(tiles), -1);
    for (int c = 0; c < clusters; ++c)
      occ[static_cast<std::size_t>(placement[static_cast<std::size_t>(c)])] =
          c;
    for (const Pin& pin : pins) {
      RENOC_CHECK_MSG(pin.cluster >= 0 && pin.cluster < clusters,
                      "pin cluster " << pin.cluster << " out of range");
      RENOC_CHECK_MSG(pin.tile >= 0 && pin.tile < tiles,
                      "pin tile " << pin.tile << " out of range");
      RENOC_CHECK_MSG(!cluster_pinned[static_cast<std::size_t>(pin.cluster)],
                      "cluster " << pin.cluster << " pinned twice");
      RENOC_CHECK_MSG(!tile_pinned[static_cast<std::size_t>(pin.tile)],
                      "tile " << pin.tile << " pinned twice");
      const int cur_tile = placement[static_cast<std::size_t>(pin.cluster)];
      const int evictee = occ[static_cast<std::size_t>(pin.tile)];
      placement[static_cast<std::size_t>(pin.cluster)] = pin.tile;
      occ[static_cast<std::size_t>(pin.tile)] = pin.cluster;
      occ[static_cast<std::size_t>(cur_tile)] = evictee;
      if (evictee >= 0 && evictee != pin.cluster)
        placement[static_cast<std::size_t>(evictee)] = cur_tile;
      cluster_pinned[static_cast<std::size_t>(pin.cluster)] = 1;
      tile_pinned[static_cast<std::size_t>(pin.tile)] = 1;
    }
  }
  std::vector<int> movable;
  for (int c = 0; c < clusters; ++c)
    if (!cluster_pinned[static_cast<std::size_t>(c)]) movable.push_back(c);
  std::vector<int> free_tiles;
  for (int t = 0; t < tiles; ++t)
    if (!tile_pinned[static_cast<std::size_t>(t)]) free_tiles.push_back(t);

  double cur_cost = cost_of(placement, cluster_power, traffic);
  std::vector<int> best = placement;
  double best_cost = cur_cost;
  int improving = 0;

  // tile -> cluster (-1 for unoccupied), kept in sync with placement.
  std::vector<int> occupant(static_cast<std::size_t>(tiles), -1);
  for (int c = 0; c < clusters; ++c)
    occupant[static_cast<std::size_t>(placement[static_cast<std::size_t>(c)])] =
        c;

  const double cooling =
      options_.iterations > 0
          ? std::pow(options_.temp_end / options_.temp_start,
                     1.0 / options_.iterations)
          : 1.0;
  double temp = options_.temp_start;

  const bool can_move = movable.size() >= 1 && free_tiles.size() >= 2;
  for (int it = 0; can_move && it < options_.iterations;
       ++it, temp *= cooling) {
    // Pick a random movable cluster and a random *other* free tile; swap
    // occupants.
    const int c = movable[rng.next_index(movable.size())];
    const int t_old = placement[static_cast<std::size_t>(c)];
    int t_new = t_old;
    while (t_new == t_old) {
      t_new = free_tiles[rng.next_index(free_tiles.size())];
    }

    const int other = occupant[static_cast<std::size_t>(t_new)];
    placement[static_cast<std::size_t>(c)] = t_new;
    if (other >= 0) placement[static_cast<std::size_t>(other)] = t_old;

    const double new_cost = cost_of(placement, cluster_power, traffic);
    const double delta = new_cost - cur_cost;
    const bool accept =
        delta <= 0.0 || rng.next_double() < std::exp(-delta / temp);
    if (accept) {
      cur_cost = new_cost;
      occupant[static_cast<std::size_t>(t_new)] = c;
      occupant[static_cast<std::size_t>(t_old)] = other;
      if (delta < 0.0) ++improving;
      if (new_cost < best_cost) {
        best_cost = new_cost;
        best = placement;
      }
    } else {
      placement[static_cast<std::size_t>(c)] = t_old;
      if (other >= 0) placement[static_cast<std::size_t>(other)] = t_new;
    }
  }

  PlacementResult result;
  result.placement = best;
  result.peak_temperature = peak_temperature_of(best, cluster_power);
  result.comm_cost = comm_cost_of(best, traffic);
  result.cost = best_cost;
  result.improving_moves = improving;
  return result;
}

}  // namespace renoc
